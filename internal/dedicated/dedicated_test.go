package dedicated

import (
	"testing"

	"chef/internal/chef"
	"chef/internal/minipy"
	"chef/internal/packages"
	"chef/internal/symexpr"
)

// symArgs builds symbolic string arguments named like symtest inputs.
func symStr(name string, n int) StrV {
	b := make([]*symexpr.Expr, n)
	for i := range b {
		b[i] = symexpr.NewVar(symexpr.Var{Buf: name, Idx: i, W: symexpr.W8})
	}
	return StrV{B: b}
}

func symInt(name string) IntV {
	return IntV{symexpr.SExt(symexpr.NewVar(symexpr.Var{Buf: name, W: symexpr.W32}), symexpr.W64)}
}

func TestSimpleBranching(t *testing.T) {
	prog := minipy.MustCompile(`
def f(x):
    if x > 10:
        return 1
    return 0
`)
	e := New(prog, Options{})
	if err := e.Explore("f", []Value{symInt("x")}); err != nil {
		t.Fatal(err)
	}
	if len(e.Tests()) != 2 {
		t.Fatalf("tests = %d, want 2", len(e.Tests()))
	}
	// Each test's input must satisfy its path: check by sign.
	seenHigh, seenLow := false, false
	for _, tc := range e.Tests() {
		v := int32(tc.Input[symexpr.Var{Buf: "x", W: symexpr.W32}])
		if v > 10 {
			seenHigh = true
		} else {
			seenLow = true
		}
	}
	if !seenHigh || !seenLow {
		t.Fatalf("missing a side: high=%v low=%v", seenHigh, seenLow)
	}
}

func TestMacLearningFlat(t *testing.T) {
	src := packages.MacLearningFlatSource(2)
	prog, err := minipy.Compile(src)
	if err != nil {
		t.Fatalf("compile: %v\n%s", err, src)
	}
	e := New(prog, Options{})
	args := []Value{symStr("s0", 2), symStr("d0", 2), symStr("s1", 2), symStr("d1", 2)}
	if err := e.Explore("drive_frames", args); err != nil {
		t.Fatal(err)
	}
	// Frame 1: d0 hits iff d0==s0 (2 outcomes). Frame 2: d1 can hit s0 or
	// s1 or miss. Distinct path counts: 2 * 3 = 6 (some may collapse when
	// infeasible; at least 4 must exist).
	if len(e.Tests()) < 4 {
		t.Fatalf("tests = %d, want >= 4", len(e.Tests()))
	}
	st := e.Stats()
	if st.Paths == 0 || st.Steps == 0 {
		t.Fatalf("stats not accumulated: %+v", st)
	}
}

func TestStringEqualityHighLevel(t *testing.T) {
	prog := minipy.MustCompile(`
def f(s):
    if s == "ab":
        return 1
    return 0
`)
	e := New(prog, Options{})
	if err := e.Explore("f", []Value{symStr("s", 2)}); err != nil {
		t.Fatal(err)
	}
	if len(e.Tests()) != 2 {
		t.Fatalf("tests = %d, want 2", len(e.Tests()))
	}
	foundEq := false
	for _, tc := range e.Tests() {
		b0 := byte(tc.Input[symexpr.Var{Buf: "s", Idx: 0, W: symexpr.W8}])
		b1 := byte(tc.Input[symexpr.Var{Buf: "s", Idx: 1, W: symexpr.W8}])
		if b0 == 'a' && b1 == 'b' {
			foundEq = true
		}
	}
	if !foundEq {
		t.Fatal("solver never synthesized the matching string")
	}
}

func TestNotBugCompat(t *testing.T) {
	src := `
def f(x):
    if not x == 5:
        return 0
    return 1
`
	correct := New(minipy.MustCompile(src), Options{})
	if err := correct.Explore("f", []Value{symInt("x")}); err != nil {
		t.Fatal(err)
	}
	buggy := New(minipy.MustCompile(src), Options{BugCompat: true})
	if err := buggy.Explore("f", []Value{symInt("x")}); err != nil {
		t.Fatal(err)
	}
	if len(correct.Tests()) != 2 {
		t.Fatalf("correct engine: %d tests, want 2", len(correct.Tests()))
	}
	// The bug: the engine queues the same constraint for both sides, so it
	// emits redundant test cases (same concrete behavior) and misses the
	// feasible x == 5 path — exactly the paper's description.
	if distinct := distinctBehaviors(correct.Tests()); distinct != 2 {
		t.Fatalf("correct engine covers %d behaviors, want 2", distinct)
	}
	if distinct := distinctBehaviors(buggy.Tests()); distinct != 1 {
		t.Fatalf("buggy engine covers %d behaviors, want 1 (redundant tests)", distinct)
	}
	for _, tc := range buggy.Tests() {
		if int32(tc.Input[symexpr.Var{Buf: "x", W: symexpr.W32}]) == 5 {
			t.Fatal("BugCompat engine should miss the x == 5 path (the NICE bug)")
		}
	}
}

// distinctBehaviors replays test inputs concretely and counts distinct
// branch outcomes of f(x) — whether x == 5.
func distinctBehaviors(tests []TestCase) int {
	seen := map[bool]bool{}
	for _, tc := range tests {
		seen[int32(tc.Input[symexpr.Var{Buf: "x", W: symexpr.W32}]) == 5] = true
	}
	return len(seen)
}

// TestCrossCheckAgainstCHEF is the §6.6 reference-implementation experiment:
// CHEF's interpreter-derived engine serves as ground truth to detect the
// dedicated engine's missing paths.
func TestCrossCheckAgainstCHEF(t *testing.T) {
	src := `
def f(x):
    if not x == 5:
        return 0
    return 1
`
	// Ground truth via CHEF.
	pt := chefOutcomes(t, src)
	// Buggy dedicated engine: its tests cover fewer distinct behaviors than
	// CHEF's HL path count, exposing the missed feasible path.
	buggy := New(minipy.MustCompile(src), Options{BugCompat: true})
	if err := buggy.Explore("f", []Value{symInt("x")}); err != nil {
		t.Fatal(err)
	}
	if got := distinctBehaviors(buggy.Tests()); got >= pt {
		t.Fatalf("cross-check failed to expose the bug: dedicated covers %d behaviors vs CHEF %d HL paths",
			got, pt)
	}
}

func chefOutcomes(t *testing.T, src string) int {
	t.Helper()
	prog := minipy.MustCompile(src)
	tp := func(ctx *chef.Ctx) {
		vm, out := minipy.RunModule(prog, ctx.M, ctx, minipy.Optimized)
		if out.Exception != "" {
			ctx.SetResult("moduleerror")
			return
		}
		x := minipy.SymbolicInt(ctx.M, "x", 0)
		_, exc := vm.CallFunction("f", []minipy.Value{x})
		if exc != nil {
			ctx.SetResult("exception:" + exc.Type)
			return
		}
		ctx.SetResult("ok")
	}
	s := chef.NewSession(tp, chef.Options{Strategy: chef.StrategyCUPAPath, Seed: 1})
	return len(s.Run(3_000_000))
}

func TestVirtualTimeComparable(t *testing.T) {
	src := packages.MacLearningFlatSource(1)
	e := New(minipy.MustCompile(src), Options{})
	if err := e.Explore("drive_frames", []Value{symStr("s0", 2), symStr("d0", 2)}); err != nil {
		t.Fatal(err)
	}
	if e.VirtualTime() <= 0 {
		t.Fatal("virtual time must be positive")
	}
}

func TestDedicatedLanguageSubset(t *testing.T) {
	// Exercise the supported opcode surface: builtins, list literals,
	// indexing, boolean operators, unary minus, string concat, functions.
	prog := minipy.MustCompile(`
def helper(v):
    return v + 1
def f(x):
    lst = [1, 2, 3]
    n = len(lst)
    if x > lst[0] and x < lst[2] + 10:
        return helper(n) - 1
    if not (x == -5):
        return 0 - n
    s = "ab" + "cd"
    if len(s) == 4 or x > 100:
        return 99
    return 1
`)
	e := New(prog, Options{})
	if err := e.Explore("f", []Value{symInt("x")}); err != nil {
		t.Fatal(err)
	}
	if len(e.Tests()) < 3 {
		t.Fatalf("tests = %d, want >= 3", len(e.Tests()))
	}
	// Every test's path condition produced a model the solver vouched for;
	// sanity-check stats plumbing too.
	st := e.Stats()
	if st.States == 0 || st.Paths == 0 || st.SolverProps == 0 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestDedicatedExceptionOutcomes(t *testing.T) {
	prog := minipy.MustCompile(`
def f(x):
    lst = [1]
    if x > 10:
        return lst[5]
    return lst[0]
`)
	e := New(prog, Options{})
	if err := e.Explore("f", []Value{symInt("x")}); err != nil {
		t.Fatal(err)
	}
	results := map[string]bool{}
	for _, tc := range e.Tests() {
		results[tc.Result] = true
	}
	if !results["exception:IndexError"] || !results["ok"] {
		t.Fatalf("results %v, want IndexError and ok", results)
	}
}

func TestDedicatedUnsupportedFeatureSurfaces(t *testing.T) {
	// Division is outside the supported subset: the engine reports it as an
	// exception-style outcome instead of wrong answers — the "partial
	// support" column of Table 4.
	prog := minipy.MustCompile(`
def f(x):
    return x // 2
`)
	e := New(prog, Options{})
	if err := e.Explore("f", []Value{symInt("x")}); err != nil {
		t.Fatal(err)
	}
	for _, tc := range e.Tests() {
		if tc.Result == "ok" {
			t.Fatalf("division should not be supported, got %v", tc.Result)
		}
	}
}

func TestDedicatedHangCap(t *testing.T) {
	prog := minipy.MustCompile(`
def f(x):
    while True:
        pass
`)
	e := New(prog, Options{})
	if err := e.Explore("f", []Value{symInt("x")}); err != nil {
		t.Fatal(err)
	}
	hang := false
	for _, tc := range e.Tests() {
		if tc.Result == "hang" {
			hang = true
		}
	}
	if !hang {
		t.Fatalf("expected a hang outcome, got %v", e.Tests())
	}
}

func TestDedicatedNotInDict(t *testing.T) {
	prog := minipy.MustCompile(`
def f(k):
    d = {}
    d["aa"] = 1
    if k not in d:
        return 0
    return 1
`)
	e := New(prog, Options{})
	if err := e.Explore("f", []Value{symStr("k", 2)}); err != nil {
		t.Fatal(err)
	}
	if len(e.Tests()) < 2 {
		t.Fatalf("tests = %d, want both membership outcomes", len(e.Tests()))
	}
}
