package dedicated

import (
	"chef/internal/minipy"
	"chef/internal/solver"
	"chef/internal/symexpr"
)

type pyExc struct{ Type string }

func exc(t string) *pyExc { return &pyExc{Type: t} }

func push(f *frame, v Value) { f.stack = append(f.stack, v) }

func pop(f *frame) Value {
	v := f.stack[len(f.stack)-1]
	f.stack = f.stack[:len(f.stack)-1]
	return v
}

func i64(v int64) IntV { return IntV{symexpr.Const(uint64(v), symexpr.W64)} }

// truthExpr converts a value to a width-1 expression; nil when the truth is
// structural (lists etc.).
func truthExpr(v Value) (*symexpr.Expr, bool) {
	switch x := v.(type) {
	case BoolV:
		return x.E, true
	case IntV:
		return symexpr.Ne(x.E, symexpr.Const(0, symexpr.W64)), true
	case NoneV:
		return symexpr.False, true
	case *ListV:
		return symexpr.Bool(len(x.Items) > 0), true
	case *DictV:
		return symexpr.Bool(len(x.Keys) > 0), true
	case StrV:
		return symexpr.Bool(len(x.B) > 0), true
	}
	return symexpr.True, true
}

// strEqExpr builds the single equality expression for two strings — the
// dedicated engine's high-level semantics (no per-byte interpreter loop).
func strEqExpr(a, b StrV) *symexpr.Expr {
	if len(a.B) != len(b.B) {
		return symexpr.False
	}
	acc := symexpr.True
	for i := range a.B {
		acc = symexpr.BoolAnd(acc, symexpr.Eq(a.B[i], b.B[i]))
	}
	return acc
}

func valuesEqExpr(a, b Value) *symexpr.Expr {
	switch x := a.(type) {
	case IntV:
		if y, ok := b.(IntV); ok {
			return symexpr.Eq(x.E, y.E)
		}
	case StrV:
		if y, ok := b.(StrV); ok {
			return strEqExpr(x, y)
		}
	case BoolV:
		if y, ok := b.(BoolV); ok {
			return symexpr.Eq(x.E, y.E)
		}
	case NoneV:
		_, ok := b.(NoneV)
		return symexpr.Bool(ok)
	}
	return symexpr.False
}

// branch forks the state on cond: the returned states cover the feasible
// sides. With BugCompat enabled and notContext set, the engine reproduces
// NICE's "if not <expr>" bug: it queues the alternate for the wrong side,
// re-exploring an already-covered path and dropping a feasible one.
func (e *Engine) branch(st *state, cond *symexpr.Expr, takenIP, fallIP int, notContext bool) []*state {
	taken := cond
	fallen := symexpr.Not(cond)
	if e.opts.BugCompat && notContext {
		// The bug: the negation is applied twice when the condition came
		// from a "not", so both successors receive the same constraint.
		fallen = cond
	}
	var out []*state
	if e.feasible(st.pc, taken) {
		ns := st.clone()
		ns.pc = append(ns.pc, taken)
		ns.pathID = pathStep(ns.pathID, true)
		ns.top().ip = takenIP
		out = append(out, ns)
	} else {
		e.stats.InfeasibleBr++
	}
	if e.feasible(st.pc, fallen) {
		ns := st.clone()
		ns.pc = append(ns.pc, fallen)
		ns.pathID = pathStep(ns.pathID, false)
		ns.top().ip = fallIP
		out = append(out, ns)
	} else {
		e.stats.InfeasibleBr++
	}
	return out
}

// exec executes one instruction; it returns fork successors, a terminal
// result, or an exception.
func (e *Engine) exec(st *state, f *frame, in minipy.Instr, globals map[string]Value) ([]*state, string, *pyExc) {
	switch in.Op {
	case minipy.OpNop:
	case minipy.OpLoadConst:
		c := f.code.Consts[in.Arg]
		push(f, convertConst(c))
	case minipy.OpLoadName:
		name := f.code.Names[in.Arg]
		if v, ok := f.locals[name]; ok && !f.code.IsModule {
			push(f, v)
			return nil, "", nil
		}
		if v, ok := globals[name]; ok {
			push(f, v)
			return nil, "", nil
		}
		if f.code.IsModule {
			if v, ok := f.locals[name]; ok {
				push(f, v)
				return nil, "", nil
			}
		}
		switch name {
		case "len":
			push(f, builtinMarker{name})
			return nil, "", nil
		}
		return nil, "", exc("NameError")
	case minipy.OpStoreName:
		name := f.code.Names[in.Arg]
		v := pop(f)
		if f.code.IsModule || f.code.Globals[name] {
			globals[name] = v
		} else {
			f.locals[name] = v
		}
	case minipy.OpPop:
		pop(f)
	case minipy.OpDup:
		push(f, f.stack[len(f.stack)-1])
	case minipy.OpBinary:
		r := pop(f)
		l := pop(f)
		v, ex := binaryOp(int(in.Arg), l, r)
		if ex != nil {
			return nil, "", ex
		}
		push(f, v)
	case minipy.OpCompare:
		r := pop(f)
		l := pop(f)
		if in.Arg == 6 || in.Arg == 7 { // in / not in
			if d, ok := r.(*DictV); ok {
				forks, res, ex := e.dictLookupFork(st, d, l, true)
				if ex != nil || res != "" {
					return forks, res, ex
				}
				if in.Arg == 7 {
					for _, ns := range forks {
						top := ns.top()
						b := top.stack[len(top.stack)-1].(BoolV)
						top.stack[len(top.stack)-1] = BoolV{symexpr.Not(b.E)}
					}
				}
				return forks, "", nil
			}
			return nil, "", exc("TypeError")
		}
		v, ex := compareOp(int(in.Arg), l, r)
		if ex != nil {
			return nil, "", ex
		}
		push(f, v)
	case minipy.OpUnaryNeg:
		v, ok := pop(f).(IntV)
		if !ok {
			return nil, "", exc("TypeError")
		}
		push(f, IntV{symexpr.Neg(v.E)})
	case minipy.OpUnaryNot:
		t, _ := truthExpr(pop(f))
		push(f, notMarker{BoolV{symexpr.Not(t)}})
	case minipy.OpJump:
		f.ip = int(in.Arg)
	case minipy.OpJumpIfFalse, minipy.OpJumpIfTrue:
		v := pop(f)
		notCtx := false
		if nm, ok := v.(notMarker); ok {
			v = nm.inner
			notCtx = true
		}
		t, _ := truthExpr(v)
		if t.IsConst() {
			taken := t.ConstVal() != 0
			if in.Op == minipy.OpJumpIfFalse {
				if !taken {
					f.ip = int(in.Arg)
				}
			} else if taken {
				f.ip = int(in.Arg)
			}
			return nil, "", nil
		}
		var condTrueIP, condFalseIP int
		if in.Op == minipy.OpJumpIfFalse {
			condTrueIP, condFalseIP = f.ip, int(in.Arg)
		} else {
			condTrueIP, condFalseIP = int(in.Arg), f.ip
		}
		forks := e.branch(st, t, condTrueIP, condFalseIP, notCtx)
		return forks, "", nil
	case minipy.OpJumpIfFalseKeep, minipy.OpJumpIfTrueKeep:
		v := f.stack[len(f.stack)-1]
		t, _ := truthExpr(v)
		if !t.IsConst() {
			// Fork, keeping the value on both sides.
			var tIP, fIP int
			if in.Op == minipy.OpJumpIfFalseKeep {
				tIP, fIP = f.ip, int(in.Arg)
			} else {
				tIP, fIP = int(in.Arg), f.ip
			}
			return e.branch(st, t, tIP, fIP, false), "", nil
		}
		taken := t.ConstVal() != 0
		if in.Op == minipy.OpJumpIfFalseKeep {
			if !taken {
				f.ip = int(in.Arg)
			}
		} else if taken {
			f.ip = int(in.Arg)
		}
	case minipy.OpCall:
		n := int(in.Arg)
		args := make([]Value, n)
		for i := n - 1; i >= 0; i-- {
			args[i] = pop(f)
		}
		fn := pop(f)
		switch fv := fn.(type) {
		case builtinMarker:
			v, ex := e.callBuiltin(fv.name, args)
			if ex != nil {
				return nil, "", ex
			}
			push(f, v)
		case *FuncV:
			if len(st.frames) > 32 {
				return nil, "", exc("RuntimeError")
			}
			nf := &frame{code: fv.Code, locals: map[string]Value{}}
			if len(args) != len(fv.Code.Params) {
				return nil, "", exc("TypeError")
			}
			for i, p := range fv.Code.Params {
				nf.locals[p] = args[i]
			}
			st.frames = append(st.frames, nf)
		default:
			return nil, "", exc("TypeError")
		}
	case minipy.OpReturn:
		v := pop(f)
		st.frames = st.frames[:len(st.frames)-1]
		if len(st.frames) == 0 {
			return nil, "ok", nil
		}
		push(st.top(), v)
	case minipy.OpBuildList:
		n := int(in.Arg)
		items := make([]Value, n)
		for i := n - 1; i >= 0; i-- {
			items[i] = pop(f)
		}
		push(f, &ListV{Items: items})
	case minipy.OpBuildDict:
		if in.Arg != 0 {
			return nil, "", exc("TypeError") // non-empty displays unsupported
		}
		push(f, &DictV{})
	case minipy.OpIndex:
		idx := pop(f)
		obj := pop(f)
		switch o := obj.(type) {
		case *ListV:
			iv, ok := idx.(IntV)
			if !ok || !iv.E.IsConst() {
				return nil, "", exc("TypeError") // symbolic list indices unsupported
			}
			i := int(symexpr.SignExtendConst(iv.E.ConstVal(), symexpr.W64))
			if i < 0 {
				i += len(o.Items)
			}
			if i < 0 || i >= len(o.Items) {
				return nil, "", exc("IndexError")
			}
			push(f, o.Items[i])
		case *DictV:
			// Fork per possibly-matching entry: high-level dict semantics.
			return e.dictLookupFork(st, o, idx, false)
		default:
			return nil, "", exc("TypeError")
		}
	case minipy.OpStoreIndex:
		idx := pop(f)
		obj := pop(f)
		val := pop(f)
		d, ok := obj.(*DictV)
		if !ok {
			return nil, "", exc("TypeError")
		}
		return e.dictStoreFork(st, d, idx, val)
	case minipy.OpMakeFunc:
		cv := f.code.Consts[in.Arg].(*minipy.CodeVal)
		push(f, &FuncV{Code: cv.Code})
	default:
		return nil, "", exc("RuntimeError")
	}
	return nil, "", nil
}

type builtinMarker struct{ name string }

func (builtinMarker) kind() string { return "builtin" }

// notMarker tags a boolean produced by "not", so BugCompat can misbehave
// exactly where NICE did.
type notMarker struct{ inner BoolV }

func (notMarker) kind() string { return "bool" }

func convertConst(c minipy.Value) Value {
	switch x := c.(type) {
	case minipy.NoneVal:
		return NoneV{}
	case minipy.BoolVal:
		return BoolV{symexpr.Bool(x.B.C != 0)}
	case minipy.IntVal:
		return IntV{symexpr.Const(x.V.C, symexpr.W64)}
	case minipy.StrVal:
		b := make([]*symexpr.Expr, x.Len())
		for i := range b {
			b[i] = symexpr.Const(x.B[i].C, symexpr.W8)
		}
		return StrV{B: b}
	case *minipy.CodeVal:
		return &FuncV{Code: x.Code}
	}
	return NoneV{}
}

func binaryOp(kind int, l, r Value) (Value, *pyExc) {
	li, lok := l.(IntV)
	ri, rok := r.(IntV)
	if lok && rok {
		switch kind {
		case 0: // binAdd
			return IntV{symexpr.Add(li.E, ri.E)}, nil
		case 1:
			return IntV{symexpr.Sub(li.E, ri.E)}, nil
		case 2:
			return IntV{symexpr.Mul(li.E, ri.E)}, nil
		}
		return nil, exc("TypeError") // div unsupported in the subset
	}
	ls, lsok := l.(StrV)
	rs, rsok := r.(StrV)
	if lsok && rsok && kind == 0 {
		return StrV{B: append(append([]*symexpr.Expr(nil), ls.B...), rs.B...)}, nil
	}
	return nil, exc("TypeError")
}

func compareOp(kind int, l, r Value) (Value, *pyExc) {
	li, lok := l.(IntV)
	ri, rok := r.(IntV)
	if lok && rok {
		switch kind {
		case 0:
			return BoolV{symexpr.Eq(li.E, ri.E)}, nil
		case 1:
			return BoolV{symexpr.Ne(li.E, ri.E)}, nil
		case 2:
			return BoolV{symexpr.Slt(li.E, ri.E)}, nil
		case 3:
			return BoolV{symexpr.Sle(li.E, ri.E)}, nil
		case 4:
			return BoolV{symexpr.Slt(ri.E, li.E)}, nil
		case 5:
			return BoolV{symexpr.Sle(ri.E, li.E)}, nil
		}
	}
	ls, lsok := l.(StrV)
	rs, rsok := r.(StrV)
	if lsok && rsok {
		switch kind {
		case 0:
			return BoolV{strEqExpr(ls, rs)}, nil
		case 1:
			return BoolV{symexpr.Not(strEqExpr(ls, rs))}, nil
		}
	}
	if kind == 0 || kind == 1 {
		eq := valuesEqExpr(l, r)
		if kind == 1 {
			eq = symexpr.Not(eq)
		}
		return BoolV{eq}, nil
	}
	return nil, exc("TypeError")
}

func (e *Engine) callBuiltin(name string, args []Value) (Value, *pyExc) {
	switch name {
	case "len":
		if len(args) != 1 {
			return nil, exc("TypeError")
		}
		switch x := args[0].(type) {
		case *ListV:
			return i64(int64(len(x.Items))), nil
		case StrV:
			return i64(int64(len(x.B))), nil
		case *DictV:
			return i64(int64(len(x.Keys))), nil
		}
		return nil, exc("TypeError")
	}
	return nil, exc("NameError")
}

// dictLookupFork implements d[k] / `k in d` by forking per entry whose key
// may equal k, plus the miss case.
func (e *Engine) dictLookupFork(st *state, d *DictV, key Value, forIn bool) ([]*state, string, *pyExc) {
	var forks []*state
	missPC := append([]*symexpr.Expr(nil), st.pc...)
	for i := range d.Keys {
		eq := valuesEqExpr(d.Keys[i], key)
		if e.feasible(st.pc, eq) {
			ns := st.clone()
			ns.pc = append(ns.pc, eq)
			ns.pathID = pathStep(ns.pathID, true) ^ uint64(i)<<32
			if forIn {
				push(ns.top(), BoolV{symexpr.True})
			} else {
				push(ns.top(), cloneValue(d.Vals[i]))
			}
			forks = append(forks, ns)
		}
		missPC = append(missPC, symexpr.Not(eq))
	}
	// Miss case.
	missRes, _ := e.solver.CheckQuery(solver.Query{PC: missPC})
	if missRes == solver.Sat {
		ns := st.clone()
		ns.pc = missPC
		ns.pathID = pathStep(ns.pathID, false)
		if forIn {
			push(ns.top(), BoolV{symexpr.False})
			forks = append(forks, ns)
		} else {
			// KeyError path terminates this state.
			e.finish(ns, "exception:KeyError")
		}
	}
	if len(forks) == 0 {
		return nil, "", exc("KeyError")
	}
	return forks, "", nil
}

// dictStoreFork implements d[k] = v: fork per entry the key may match
// (overwrite) plus the append case.
func (e *Engine) dictStoreFork(st *state, d *DictV, key, val Value) ([]*state, string, *pyExc) {
	var forks []*state
	missPC := append([]*symexpr.Expr(nil), st.pc...)
	for i := range d.Keys {
		eq := valuesEqExpr(d.Keys[i], key)
		if e.feasible(st.pc, eq) {
			ns := st.clone()
			ns.pc = append(ns.pc, eq)
			ns.pathID = pathStep(ns.pathID, true) ^ uint64(i)<<40
			// The dict in ns is the cloned one; find it via the cloned
			// frame stack: the store already popped operands, so mutate the
			// cloned dict by position.
			nd := findDict(ns, d, st)
			if nd != nil {
				nd.Vals[i] = cloneValue(val)
			}
			forks = append(forks, ns)
		}
		missPC = append(missPC, symexpr.Not(eq))
	}
	missRes, _ := e.solver.CheckQuery(solver.Query{PC: missPC})
	if missRes == solver.Sat {
		ns := st.clone()
		ns.pc = missPC
		ns.pathID = pathStep(ns.pathID, false)
		nd := findDict(ns, d, st)
		if nd != nil {
			nd.Keys = append(nd.Keys, cloneValue(key))
			nd.Vals = append(nd.Vals, cloneValue(val))
		}
		forks = append(forks, ns)
	}
	if len(forks) == 0 {
		return nil, "", exc("RuntimeError")
	}
	return forks, "", nil
}

// findDict locates the clone of dict d (from state orig) inside state ns by
// walking both structures in lockstep.
func findDict(ns *state, d *DictV, orig *state) *DictV {
	for fi, f := range orig.frames {
		for k, v := range f.locals {
			if found := matchDict(v, d, ns.frames[fi].locals[k]); found != nil {
				return found
			}
		}
		for si, v := range f.stack {
			if found := matchDict(v, d, ns.frames[fi].stack[si]); found != nil {
				return found
			}
		}
	}
	return nil
}

func matchDict(origV Value, d *DictV, cloneV Value) *DictV {
	switch ov := origV.(type) {
	case *DictV:
		if ov == d {
			nd, _ := cloneV.(*DictV)
			return nd
		}
	case *ListV:
		cl, ok := cloneV.(*ListV)
		if !ok {
			return nil
		}
		for i := range ov.Items {
			if i < len(cl.Items) {
				if found := matchDict(ov.Items[i], d, cl.Items[i]); found != nil {
					return found
				}
			}
		}
	}
	return nil
}
