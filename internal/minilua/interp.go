package minilua

import (
	"chef/internal/lowlevel"
	"chef/internal/symexpr"
)

// Outcome is the observable result of running a MiniLua chunk.
type Outcome struct {
	Error   string // empty on success
	Printed []string
}

// Result renders the outcome in canonical test-case form.
func (o Outcome) Result() string {
	if o.Error == "" {
		return "ok"
	}
	return "error:" + o.Error
}

// RunModule executes the compiled chunk's main body.
func RunModule(prog *Program, m *lowlevel.Machine, host Host, cfg Config) (*VM, Outcome) {
	vm := NewVM(prog, m, host, cfg)
	_, err := vm.Run()
	out := Outcome{Printed: vm.Printed()}
	if err != nil {
		out.Error = err.Msg
	}
	return vm, out
}

// CoverageHost records executed source lines during replay.
type CoverageHost struct {
	Prog  *Program
	Lines map[int]bool
}

// NewCoverageHost builds a coverage recorder for prog.
func NewCoverageHost(prog *Program) *CoverageHost {
	return &CoverageHost{Prog: prog, Lines: map[int]bool{}}
}

// LogPC implements Host.
func (h *CoverageHost) LogPC(hlpc uint64, opcode uint32) {
	if line := h.Prog.LineOf(hlpc); line > 0 {
		h.Lines[line] = true
	}
}

// SymbolicString builds a MiniLua string over a named symbolic buffer.
func SymbolicString(m *lowlevel.Machine, name string, n int, def string) StrVal {
	b := make([]lowlevel.SVal, n)
	for i := 0; i < n; i++ {
		var d byte
		if i < len(def) {
			d = def[i]
		}
		b[i] = m.InputByte(name, i, d)
	}
	return StrVal{B: b}
}

// SymbolicInt builds a MiniLua number over a named symbolic 32-bit input.
func SymbolicInt(m *lowlevel.Machine, name string, def int32) IntVal {
	return IntVal{lowlevel.SExtV(m.InputInt32(name, def), symexpr.W64)}
}
