package minilua

import "chef/internal/lowlevel"

// LLPCName returns the human-readable site name of a MiniLua low-level
// program counter ("" for PCs outside this interpreter). Counterpart of
// minipy.LLPCName for the obs label resolver.
func LLPCName(pc lowlevel.LLPC) string {
	switch pc {
	case llpcJumpCond:
		return "lua/jump_cond"
	case llpcForLoop:
		return "lua/for_loop"
	case llpcIntDivZero:
		return "lua/int_div_zero"
	case llpcIntSign:
		return "lua/int_sign"
	case llpcIntEq:
		return "lua/int_eq"
	case llpcStrEqFast:
		return "lua/str_eq_fast"
	case llpcStrEqFinal:
		return "lua/str_eq_final"
	case llpcStrLtByte:
		return "lua/str_lt_byte"
	case llpcStrFindPos:
		return "lua/str_find_pos"
	case llpcStrIntern:
		return "lua/str_intern"
	case llpcTableBucket:
		return "lua/table_bucket"
	case llpcTableKeyCmp:
		return "lua/table_key_cmp"
	case llpcTableArrayIdx:
		return "lua/table_array_idx"
	case llpcStrAlloc:
		return "lua/str_alloc"
	case llpcToNumber:
		return "lua/to_number"
	case llpcStrCase:
		return "lua/str_case"
	}
	return ""
}
