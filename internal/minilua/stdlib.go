package minilua

import (
	"sort"

	"chef/internal/lowlevel"
	"chef/internal/symexpr"
)

// sortedNames returns the keys of a builtin-function map in sorted order.
// Installation order matters for determinism: library tables are ordinary
// Lua tables whose bucket chains are scanned linearly (with per-entry
// virtual-time steps, and — under hash neutralization — a single shared
// bucket), so installing in Go map iteration order would make per-run step
// counts, and therefore the session's virtual clock, vary between runs.
func sortedNames(m map[string]func(vm *VM, args []Value) (Value, *LuaError)) []string {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// installStdlib populates the global namespace with MiniLua's standard
// library: the base functions and the string/table libraries the evaluation
// packages rely on.
func (vm *VM) installStdlib() {
	g := vm.globals
	g["print"] = &BuiltinVal{Name: "print", Fn: biPrint}
	g["error"] = &BuiltinVal{Name: "error", Fn: biError}
	g["pcall"] = &BuiltinVal{Name: "pcall", Fn: biPcall}
	g["tostring"] = &BuiltinVal{Name: "tostring", Fn: biToString}
	g["tonumber"] = &BuiltinVal{Name: "tonumber", Fn: biToNumber}
	g["type"] = &BuiltinVal{Name: "type", Fn: biType}
	g["pairs"] = &BuiltinVal{Name: "pairs", Fn: biPairs}
	g["ipairs"] = &BuiltinVal{Name: "ipairs", Fn: biIpairs}
	g["assert"] = &BuiltinVal{Name: "assert", Fn: biAssert}

	strTbl := NewTable()
	for _, name := range sortedNames(stringLib) {
		_ = vm.indexSet(strTbl, MkStr(name), &BuiltinVal{Name: "string." + name, Fn: stringLib[name]})
	}
	g["string"] = strTbl

	tblTbl := NewTable()
	for _, name := range sortedNames(tableLib) {
		_ = vm.indexSet(tblTbl, MkStr(name), &BuiltinVal{Name: "table." + name, Fn: tableLib[name]})
	}
	g["table"] = tblTbl
}

// stringMethod resolves s:name(...) against the string library.
func (vm *VM) stringMethod(name string) (Value, bool) {
	fn, ok := stringLib[name]
	if !ok {
		return nil, false
	}
	return &BuiltinVal{Name: "string." + name, Fn: fn}, true
}

func biPrint(vm *VM, args []Value) (Value, *LuaError) {
	line := ""
	for i, a := range args {
		if i > 0 {
			line += "\t"
		}
		s, err := biToString(vm, []Value{a})
		if err != nil {
			return nil, err
		}
		line += s.(StrVal).Concrete()
	}
	vm.printed = append(vm.printed, line)
	return Nil, nil
}

func biError(vm *VM, args []Value) (Value, *LuaError) {
	msg := "error"
	if len(args) > 0 {
		if s, ok := args[0].(StrVal); ok {
			msg = s.Concrete()
		} else {
			msg = Repr(args[0])
		}
	}
	return nil, &LuaError{Msg: msg}
}

// biPcall calls its first argument protected. MiniLua's pcall returns a
// table {[1]=ok, [2]=result-or-error} because the VM is single-return (a
// documented deviation from Lua's multiple returns).
func biPcall(vm *VM, args []Value) (Value, *LuaError) {
	if len(args) == 0 {
		return nil, luaErrf("bad argument #1 to 'pcall' (value expected)")
	}
	res := NewTable()
	v, err := vm.call(args[0], args[1:])
	if err != nil {
		res.arr = append(res.arr, MkBool(false), MkStr(err.Msg))
	} else {
		res.arr = append(res.arr, MkBool(true), v)
	}
	return res, nil
}

func biToString(vm *VM, args []Value) (Value, *LuaError) {
	if len(args) == 0 {
		return MkStr("nil"), nil
	}
	switch x := args[0].(type) {
	case StrVal:
		return x, nil
	case IntVal:
		return vm.intToStr(x.V), nil
	case NilVal:
		return MkStr("nil"), nil
	case BoolVal:
		if vm.m.Branch(llpcJumpCond, x.B) {
			return MkStr("true"), nil
		}
		return MkStr("false"), nil
	default:
		return MkStr(Repr(args[0])), nil
	}
}

func biToNumber(vm *VM, args []Value) (Value, *LuaError) {
	if len(args) == 0 {
		return Nil, nil
	}
	switch x := args[0].(type) {
	case IntVal:
		return x, nil
	case StrVal:
		if x.Len() == 0 {
			return Nil, nil
		}
		neg := false
		i := 0
		// Branch on symbolic sign bytes to stay faithful to the concrete
		// interpreter's semantics.
		if vm.m.Branch(llpcToNumber, lowlevel.EqV(x.B[0], c8v('-'))) {
			neg = true
			i = 1
		} else if vm.m.Branch(llpcToNumber, lowlevel.EqV(x.B[0], c8v('+'))) {
			i = 1
		}
		if i == 1 && x.Len() == 1 {
			return Nil, nil
		}
		acc := c64(0)
		for ; i < x.Len(); i++ {
			vm.m.Step(1)
			b := x.B[i]
			isDigit := lowlevel.BoolAndV(lowlevel.UleV(c8v('0'), b), lowlevel.UleV(b, c8v('9')))
			if !vm.m.Branch(llpcToNumber, isDigit) {
				return Nil, nil
			}
			acc = lowlevel.AddV(lowlevel.MulV(acc, c64(10)), lowlevel.SubV(lowlevel.ZExtV(b, symexpr.W64), c64('0')))
		}
		if neg {
			acc = lowlevel.NegV(acc)
		}
		return IntVal{acc}, nil
	}
	return Nil, nil
}

func biType(vm *VM, args []Value) (Value, *LuaError) {
	if len(args) == 0 {
		return MkStr("nil"), nil
	}
	return MkStr(args[0].TypeName()), nil
}

func biPairs(vm *VM, args []Value) (Value, *LuaError) {
	if len(args) != 1 {
		return nil, luaErrf("bad argument to 'pairs'")
	}
	t, ok := args[0].(*TableVal)
	if !ok {
		return nil, luaErrf("bad argument #1 to 'pairs' (table expected, got %s)", args[0].TypeName())
	}
	return &pairsIter{t: t}, nil
}

func biIpairs(vm *VM, args []Value) (Value, *LuaError) {
	if len(args) != 1 {
		return nil, luaErrf("bad argument to 'ipairs'")
	}
	t, ok := args[0].(*TableVal)
	if !ok {
		return nil, luaErrf("bad argument #1 to 'ipairs' (table expected, got %s)", args[0].TypeName())
	}
	return &ipairsIter{t: t}, nil
}

func biAssert(vm *VM, args []Value) (Value, *LuaError) {
	if len(args) == 0 {
		return nil, luaErrf("assertion failed!")
	}
	if !vm.m.Branch(llpcJumpCond, vm.truth(args[0])) {
		msg := "assertion failed!"
		if len(args) > 1 {
			if s, ok := args[1].(StrVal); ok {
				msg = s.Concrete()
			}
		}
		return nil, &LuaError{Msg: msg}
	}
	return args[0], nil
}

func argStrL(args []Value, i int, fname string) (StrVal, *LuaError) {
	if i >= len(args) {
		return StrVal{}, luaErrf("bad argument #%d to '%s' (string expected, got no value)", i+1, fname)
	}
	s, ok := args[i].(StrVal)
	if !ok {
		return StrVal{}, luaErrf("bad argument #%d to '%s' (string expected, got %s)", i+1, fname, args[i].TypeName())
	}
	return s, nil
}

func argIntL(vm *VM, args []Value, i int, fname string, def int64) (int64, *LuaError) {
	if i >= len(args) {
		return def, nil
	}
	if _, isNil := args[i].(NilVal); isNil {
		return def, nil
	}
	n, ok := args[i].(IntVal)
	if !ok {
		return 0, luaErrf("bad argument #%d to '%s' (number expected, got %s)", i+1, fname, args[i].TypeName())
	}
	if n.V.IsSymbolic() {
		return int64(vm.m.ConcretizeFork(llpcTableArrayIdx+2000, n.V)), nil
	}
	return n.V.Int(), nil
}

var stringLib = map[string]func(vm *VM, args []Value) (Value, *LuaError){
	"len": func(vm *VM, args []Value) (Value, *LuaError) {
		s, err := argStrL(args, 0, "len")
		if err != nil {
			return nil, err
		}
		return MkInt(int64(s.Len())), nil
	},
	"sub": func(vm *VM, args []Value) (Value, *LuaError) {
		s, err := argStrL(args, 0, "sub")
		if err != nil {
			return nil, err
		}
		i, err := argIntL(vm, args, 1, "sub", 1)
		if err != nil {
			return nil, err
		}
		j, err := argIntL(vm, args, 2, "sub", -1)
		if err != nil {
			return nil, err
		}
		return vm.strSub(s, int(i), int(j)), nil
	},
	"byte": func(vm *VM, args []Value) (Value, *LuaError) {
		s, err := argStrL(args, 0, "byte")
		if err != nil {
			return nil, err
		}
		i, err := argIntL(vm, args, 1, "byte", 1)
		if err != nil {
			return nil, err
		}
		if i < 1 || int(i) > s.Len() {
			return Nil, nil
		}
		return IntVal{lowlevel.ZExtV(s.B[i-1], symexpr.W64)}, nil
	},
	"char": func(vm *VM, args []Value) (Value, *LuaError) {
		var out []lowlevel.SVal
		for i := range args {
			n, ok := args[i].(IntVal)
			if !ok {
				return nil, luaErrf("bad argument #%d to 'char'", i+1)
			}
			b := lowlevel.TruncV(n.V, symexpr.W8)
			if !vm.cfg.AvoidSymbolicPointers && b.IsSymbolic() {
				c := vm.m.ConcretizeFork(llpcStrIntern, b)
				b = c8v(byte(c))
			}
			out = append(out, b)
		}
		return StrVal{B: out}, nil
	},
	"rep": func(vm *VM, args []Value) (Value, *LuaError) {
		s, err := argStrL(args, 0, "rep")
		if err != nil {
			return nil, err
		}
		if len(args) < 2 {
			return nil, luaErrf("bad argument #2 to 'rep' (number expected)")
		}
		n, ok := args[1].(IntVal)
		if !ok {
			return nil, luaErrf("bad argument #2 to 'rep' (number expected)")
		}
		return vm.strRep(s, n)
	},
	"find": func(vm *VM, args []Value) (Value, *LuaError) {
		s, err := argStrL(args, 0, "find")
		if err != nil {
			return nil, err
		}
		pat, err := argStrL(args, 1, "find")
		if err != nil {
			return nil, err
		}
		init, err := argIntL(vm, args, 2, "find", 1)
		if err != nil {
			return nil, err
		}
		// MiniLua's find is always plain (no patterns), as the packages use
		// it; position or nil is returned.
		pos := vm.strFindPlain(s, pat, int(init))
		if pos < 0 {
			return Nil, nil
		}
		return MkInt(int64(pos)), nil
	},
	"format": func(vm *VM, args []Value) (Value, *LuaError) {
		f, err := argStrL(args, 0, "format")
		if err != nil {
			return nil, err
		}
		var out []lowlevel.SVal
		argi := 1
		i := 0
		for i < f.Len() {
			b := f.B[i]
			if !b.IsSymbolic() && byte(b.C) == '%' && i+1 < f.Len() && !f.B[i+1].IsSymbolic() {
				verb := byte(f.B[i+1].C)
				switch verb {
				case 's', 'd':
					if argi >= len(args) {
						return nil, luaErrf("bad argument #%d to 'format' (no value)", argi+1)
					}
					sv, err := vm.coerceStr(args[argi])
					if err != nil {
						return nil, luaErrf("bad argument #%d to 'format'", argi+1)
					}
					out = append(out, sv.B...)
					argi++
					i += 2
					continue
				case '%':
					out = append(out, c8v('%'))
					i += 2
					continue
				}
			}
			out = append(out, b)
			i++
		}
		return StrVal{B: out}, nil
	},
	"gsub": func(vm *VM, args []Value) (Value, *LuaError) {
		// Plain (non-pattern) global substitution; returns the new string
		// (MiniLua is single-return, so the count is dropped).
		s, err := argStrL(args, 0, "gsub")
		if err != nil {
			return nil, err
		}
		pat, err := argStrL(args, 1, "gsub")
		if err != nil {
			return nil, err
		}
		rep, err := argStrL(args, 2, "gsub")
		if err != nil {
			return nil, err
		}
		if pat.Len() == 0 {
			return s, nil
		}
		var out []lowlevel.SVal
		start := 1
		for {
			pos := vm.strFindPlain(s, pat, start)
			vm.m.Step(1)
			if pos < 0 {
				out = append(out, s.B[start-1:]...)
				return StrVal{B: out}, nil
			}
			out = append(out, s.B[start-1:pos-1]...)
			out = append(out, rep.B...)
			start = pos + pat.Len()
		}
	},
	"lower": func(vm *VM, args []Value) (Value, *LuaError) {
		s, err := argStrL(args, 0, "lower")
		if err != nil {
			return nil, err
		}
		return vm.strCase(s, true), nil
	},
	"upper": func(vm *VM, args []Value) (Value, *LuaError) {
		s, err := argStrL(args, 0, "upper")
		if err != nil {
			return nil, err
		}
		return vm.strCase(s, false), nil
	},
}

var tableLib = map[string]func(vm *VM, args []Value) (Value, *LuaError){
	"insert": func(vm *VM, args []Value) (Value, *LuaError) {
		if len(args) < 2 {
			return nil, luaErrf("wrong number of arguments to 'insert'")
		}
		t, ok := args[0].(*TableVal)
		if !ok {
			return nil, luaErrf("bad argument #1 to 'insert' (table expected)")
		}
		if len(args) == 2 {
			t.arr = append(t.arr, args[1])
			return Nil, nil
		}
		pos, err := argIntL(vm, args, 1, "insert", 0)
		if err != nil {
			return nil, err
		}
		if pos < 1 || int(pos) > len(t.arr)+1 {
			return nil, luaErrf("bad argument #2 to 'insert' (position out of bounds)")
		}
		i := int(pos) - 1
		t.arr = append(t.arr[:i], append([]Value{args[2]}, t.arr[i:]...)...)
		return Nil, nil
	},
	"remove": func(vm *VM, args []Value) (Value, *LuaError) {
		if len(args) < 1 {
			return nil, luaErrf("wrong number of arguments to 'remove'")
		}
		t, ok := args[0].(*TableVal)
		if !ok {
			return nil, luaErrf("bad argument #1 to 'remove' (table expected)")
		}
		n := t.arrayLen()
		if n == 0 {
			return Nil, nil
		}
		pos, err := argIntL(vm, args, 1, "remove", int64(n))
		if err != nil {
			return nil, err
		}
		if pos < 1 || int(pos) > n {
			return Nil, nil
		}
		v := t.arr[pos-1]
		t.arr = append(t.arr[:pos-1], t.arr[pos:]...)
		return v, nil
	},
	"concat": func(vm *VM, args []Value) (Value, *LuaError) {
		if len(args) < 1 {
			return nil, luaErrf("wrong number of arguments to 'concat'")
		}
		t, ok := args[0].(*TableVal)
		if !ok {
			return nil, luaErrf("bad argument #1 to 'concat' (table expected)")
		}
		sep := StrVal{}
		if len(args) > 1 {
			s, ok := args[1].(StrVal)
			if !ok {
				return nil, luaErrf("bad argument #2 to 'concat' (string expected)")
			}
			sep = s
		}
		var out []lowlevel.SVal
		n := t.arrayLen()
		for i := 0; i < n; i++ {
			vm.m.Step(1)
			if i > 0 {
				out = append(out, sep.B...)
			}
			sv, err := vm.coerceStr(t.arr[i])
			if err != nil {
				return nil, err
			}
			out = append(out, sv.B...)
		}
		return StrVal{B: out}, nil
	},
}
