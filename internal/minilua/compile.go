package minilua

// Single-pass parser/compiler, in the spirit of the reference Lua
// implementation: statements compile directly to bytecode while parsing,
// with jump targets patched after emission.

type parser struct {
	toks []Token
	pos  int
	prog *Program
}

type funcState struct {
	p      *parser
	proto  *Proto
	scopes []map[string]int
	breaks [][]int
}

// Compile parses and compiles a MiniLua chunk.
func Compile(src string) (*Program, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, prog: &Program{Source: src}}
	fs := p.newFunc("<main>", nil)
	if err := fs.block(func() bool { return p.atEOF() }); err != nil {
		return nil, err
	}
	fs.emit(OpLoadNil, 0, 0, p.cur().Line)
	fs.emit(OpReturn, 1, 0, p.cur().Line)
	p.prog.Main = fs.proto
	return p.prog, nil
}

// MustCompile compiles or panics (for embedded package sources).
func MustCompile(src string) *Program {
	prog, err := Compile(src)
	if err != nil {
		panic(err)
	}
	return prog
}

func (p *parser) newFunc(name string, params []string) *funcState {
	proto := &Proto{Name: name, BlockID: uint32(len(p.prog.Protos)), NumParams: len(params)}
	p.prog.Protos = append(p.prog.Protos, proto)
	fs := &funcState{p: p, proto: proto, scopes: []map[string]int{{}}}
	for _, prm := range params {
		fs.declareLocal(prm)
	}
	return fs
}

func (p *parser) cur() Token  { return p.toks[p.pos] }
func (p *parser) atEOF() bool { return p.cur().Kind == TokEOF }

func (p *parser) advance() Token {
	t := p.cur()
	if t.Kind != TokEOF {
		p.pos++
	}
	return t
}

func (p *parser) isOp(s string) bool {
	t := p.cur()
	return t.Kind == TokOp && t.Text == s
}

func (p *parser) isKw(s string) bool {
	t := p.cur()
	return t.Kind == TokKeyword && t.Text == s
}

func (p *parser) acceptOp(s string) bool {
	if p.isOp(s) {
		p.advance()
		return true
	}
	return false
}

func (p *parser) acceptKw(s string) bool {
	if p.isKw(s) {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expectOp(s string) error {
	if !p.acceptOp(s) {
		return errf(p.cur().Line, "expected %q, got %s", s, p.cur())
	}
	return nil
}

func (p *parser) expectKw(s string) error {
	if !p.acceptKw(s) {
		return errf(p.cur().Line, "expected %q, got %s", s, p.cur())
	}
	return nil
}

func (p *parser) expectName() (Token, error) {
	if p.cur().Kind != TokName {
		return Token{}, errf(p.cur().Line, "expected name, got %s", p.cur())
	}
	return p.advance(), nil
}

func (fs *funcState) emit(op OpCode, arg, b int32, line int) int {
	fs.proto.Instrs = append(fs.proto.Instrs, Instr{Op: op, Arg: arg, B: b, Line: line})
	return len(fs.proto.Instrs) - 1
}

func (fs *funcState) here() int         { return len(fs.proto.Instrs) }
func (fs *funcState) patch(at, tgt int) { fs.proto.Instrs[at].Arg = int32(tgt) }

func (fs *funcState) constIdx(v Value) int32 {
	for i, c := range fs.proto.Consts {
		if luaConstEqual(c, v) {
			return int32(i)
		}
	}
	fs.proto.Consts = append(fs.proto.Consts, v)
	return int32(len(fs.proto.Consts) - 1)
}

func (fs *funcState) nameIdx(name string) int32 {
	for i, n := range fs.proto.Names {
		if n == name {
			return int32(i)
		}
	}
	fs.proto.Names = append(fs.proto.Names, name)
	return int32(len(fs.proto.Names) - 1)
}

func luaConstEqual(a, b Value) bool {
	switch x := a.(type) {
	case IntVal:
		y, ok := b.(IntVal)
		return ok && !x.V.IsSymbolic() && !y.V.IsSymbolic() && x.V.C == y.V.C
	case StrVal:
		y, ok := b.(StrVal)
		return ok && !x.HasSymbolicBytes() && !y.HasSymbolicBytes() && x.Concrete() == y.Concrete()
	}
	return false
}

func (fs *funcState) declareLocal(name string) int {
	slot := fs.proto.NumSlots
	fs.proto.NumSlots++
	fs.scopes[len(fs.scopes)-1][name] = slot
	return slot
}

func (fs *funcState) resolve(name string) (int, bool) {
	for i := len(fs.scopes) - 1; i >= 0; i-- {
		if slot, ok := fs.scopes[i][name]; ok {
			return slot, true
		}
	}
	return 0, false
}

func (fs *funcState) pushScope() { fs.scopes = append(fs.scopes, map[string]int{}) }
func (fs *funcState) popScope()  { fs.scopes = fs.scopes[:len(fs.scopes)-1] }

// block compiles statements until the stop predicate holds (caller consumes
// the terminator token).
func (fs *funcState) block(stop func() bool) error {
	for !stop() {
		if fs.p.atEOF() {
			return nil
		}
		if err := fs.statement(); err != nil {
			return err
		}
	}
	return nil
}

func blockEndsAt(p *parser, kws ...string) func() bool {
	return func() bool {
		for _, k := range kws {
			if p.isKw(k) {
				return true
			}
		}
		return false
	}
}

func (fs *funcState) statement() error {
	p := fs.p
	t := p.cur()
	switch {
	case p.acceptOp(";"):
		return nil
	case p.isKw("local"):
		return fs.localStmt()
	case p.isKw("if"):
		return fs.ifStmt()
	case p.isKw("while"):
		return fs.whileStmt()
	case p.isKw("repeat"):
		return fs.repeatStmt()
	case p.isKw("for"):
		return fs.forStmt()
	case p.isKw("function"):
		return fs.funcStmt()
	case p.isKw("return"):
		p.advance()
		if p.isKw("end") || p.isKw("else") || p.isKw("elseif") || p.isKw("until") || p.atEOF() || p.isOp(";") {
			fs.emit(OpLoadNil, 0, 0, t.Line)
		} else {
			if err := fs.expr(); err != nil {
				return err
			}
		}
		fs.emit(OpReturn, 1, 0, t.Line)
		return nil
	case p.isKw("break"):
		p.advance()
		if len(fs.breaks) == 0 {
			return errf(t.Line, "break outside loop")
		}
		at := fs.emit(OpJump, 0, 0, t.Line)
		fs.breaks[len(fs.breaks)-1] = append(fs.breaks[len(fs.breaks)-1], at)
		return nil
	case p.isKw("do"):
		p.advance()
		fs.pushScope()
		if err := fs.block(blockEndsAt(p, "end")); err != nil {
			return err
		}
		fs.popScope()
		return p.expectKw("end")
	default:
		return fs.exprStmt()
	}
}

func (fs *funcState) localStmt() error {
	p := fs.p
	line := p.advance().Line // local
	if p.isKw("function") {
		p.advance()
		name, err := p.expectName()
		if err != nil {
			return err
		}
		slot := fs.declareLocal(name.Text)
		if err := fs.funcBody(name.Text, line); err != nil {
			return err
		}
		fs.emit(OpSetLocal, int32(slot), 0, line)
		return nil
	}
	var names []string
	for {
		n, err := p.expectName()
		if err != nil {
			return err
		}
		names = append(names, n.Text)
		if !p.acceptOp(",") {
			break
		}
	}
	nExprs := 0
	if p.acceptOp("=") {
		for {
			if err := fs.expr(); err != nil {
				return err
			}
			nExprs++
			if !p.acceptOp(",") {
				break
			}
		}
	}
	if nExprs > len(names) {
		return errf(line, "too many initializers")
	}
	for nExprs < len(names) {
		fs.emit(OpLoadNil, 0, 0, line)
		nExprs++
	}
	// Declare after evaluating initializers (Lua semantics), then store in
	// reverse order (last value on top).
	slots := make([]int, len(names))
	for i, n := range names {
		slots[i] = fs.declareLocal(n)
	}
	for i := len(names) - 1; i >= 0; i-- {
		fs.emit(OpSetLocal, int32(slots[i]), 0, line)
	}
	return nil
}

func (fs *funcState) ifStmt() error {
	p := fs.p
	line := p.advance().Line // if / elseif
	if err := fs.expr(); err != nil {
		return err
	}
	if err := p.expectKw("then"); err != nil {
		return err
	}
	jfalse := fs.emit(OpJumpIfNot, 0, 0, line)
	fs.pushScope()
	if err := fs.block(blockEndsAt(p, "end", "else", "elseif")); err != nil {
		return err
	}
	fs.popScope()
	switch {
	case p.isKw("elseif"):
		jend := fs.emit(OpJump, 0, 0, line)
		fs.patch(jfalse, fs.here())
		if err := fs.ifStmt(); err != nil { // consumes through matching end
			return err
		}
		fs.patch(jend, fs.here())
		return nil
	case p.acceptKw("else"):
		jend := fs.emit(OpJump, 0, 0, line)
		fs.patch(jfalse, fs.here())
		fs.pushScope()
		if err := fs.block(blockEndsAt(p, "end")); err != nil {
			return err
		}
		fs.popScope()
		fs.patch(jend, fs.here())
		return p.expectKw("end")
	default:
		fs.patch(jfalse, fs.here())
		return p.expectKw("end")
	}
}

func (fs *funcState) whileStmt() error {
	p := fs.p
	line := p.advance().Line
	top := fs.here()
	if err := fs.expr(); err != nil {
		return err
	}
	if err := p.expectKw("do"); err != nil {
		return err
	}
	jexit := fs.emit(OpJumpIfNot, 0, 0, line)
	fs.breaks = append(fs.breaks, nil)
	fs.pushScope()
	if err := fs.block(blockEndsAt(p, "end")); err != nil {
		return err
	}
	fs.popScope()
	fs.emit(OpJump, int32(top), 0, line)
	fs.patch(jexit, fs.here())
	for _, at := range fs.breaks[len(fs.breaks)-1] {
		fs.patch(at, fs.here())
	}
	fs.breaks = fs.breaks[:len(fs.breaks)-1]
	return p.expectKw("end")
}

func (fs *funcState) repeatStmt() error {
	p := fs.p
	line := p.advance().Line
	top := fs.here()
	fs.breaks = append(fs.breaks, nil)
	fs.pushScope()
	if err := fs.block(blockEndsAt(p, "until")); err != nil {
		return err
	}
	if err := p.expectKw("until"); err != nil {
		return err
	}
	if err := fs.expr(); err != nil {
		return err
	}
	fs.popScope()
	fs.emit(OpJumpIfNot, int32(top), 0, line)
	for _, at := range fs.breaks[len(fs.breaks)-1] {
		fs.patch(at, fs.here())
	}
	fs.breaks = fs.breaks[:len(fs.breaks)-1]
	return nil
}

func (fs *funcState) forStmt() error {
	p := fs.p
	line := p.advance().Line
	name1, err := p.expectName()
	if err != nil {
		return err
	}
	if p.acceptOp("=") {
		// Numeric for: init, limit [, step].
		if err := fs.expr(); err != nil {
			return err
		}
		if err := p.expectOp(","); err != nil {
			return err
		}
		if err := fs.expr(); err != nil {
			return err
		}
		if p.acceptOp(",") {
			if err := fs.expr(); err != nil {
				return err
			}
		} else {
			fs.emit(OpLoadK, fs.constIdx(MkInt(1)), 0, line)
		}
		fs.pushScope()
		varSlot := fs.declareLocal(name1.Text)
		fs.declareLocal("(limit)")
		fs.declareLocal("(step)")
		fs.emit(OpForPrep, int32(varSlot), 0, line)
		jcheck := fs.emit(OpJump, 0, 0, line)
		body := fs.here()
		fs.breaks = append(fs.breaks, nil)
		if err := p.expectKw("do"); err != nil {
			return err
		}
		if err := fs.block(blockEndsAt(p, "end")); err != nil {
			return err
		}
		fs.patch(jcheck, fs.here())
		fs.emit(OpForLoop, int32(body), int32(varSlot), line)
		for _, at := range fs.breaks[len(fs.breaks)-1] {
			fs.patch(at, fs.here())
		}
		fs.breaks = fs.breaks[:len(fs.breaks)-1]
		fs.popScope()
		return p.expectKw("end")
	}
	// Generic for: for k [, v] in <expr> do
	var name2 string
	if p.acceptOp(",") {
		n2, err := p.expectName()
		if err != nil {
			return err
		}
		name2 = n2.Text
	}
	if err := p.expectKw("in"); err != nil {
		return err
	}
	if err := fs.expr(); err != nil {
		return err
	}
	if err := p.expectKw("do"); err != nil {
		return err
	}
	fs.pushScope()
	iterSlot := fs.declareLocal("(iter)")
	fs.emit(OpSetLocal, int32(iterSlot), 0, line)
	kSlot := fs.declareLocal(name1.Text)
	vSlot := -1
	if name2 != "" {
		vSlot = fs.declareLocal(name2)
	}
	top := fs.here()
	jexit := fs.emit(OpTForCall, 0, int32(iterSlot), line)
	// TForCall pushes key then value (value on top).
	if vSlot >= 0 {
		fs.emit(OpSetLocal, int32(vSlot), 0, line)
	} else {
		fs.emit(OpPop, 0, 0, line)
	}
	fs.emit(OpSetLocal, int32(kSlot), 0, line)
	fs.breaks = append(fs.breaks, nil)
	if err := fs.block(blockEndsAt(p, "end")); err != nil {
		return err
	}
	fs.emit(OpJump, int32(top), 0, line)
	fs.patch(jexit, fs.here())
	for _, at := range fs.breaks[len(fs.breaks)-1] {
		fs.patch(at, fs.here())
	}
	fs.breaks = fs.breaks[:len(fs.breaks)-1]
	fs.popScope()
	return p.expectKw("end")
}

func (fs *funcState) funcStmt() error {
	p := fs.p
	line := p.advance().Line // function
	name, err := p.expectName()
	if err != nil {
		return err
	}
	if p.acceptOp(".") {
		field, err := p.expectName()
		if err != nil {
			return err
		}
		// function t.f(...) : compile value, then t, key, SetIndex.
		if err := fs.funcBody(name.Text+"."+field.Text, line); err != nil {
			return err
		}
		fs.loadVar(name.Text, line)
		fs.emit(OpLoadK, fs.constIdx(MkStr(field.Text)), 0, line)
		fs.emit(OpSetIndex, 0, 0, line)
		return nil
	}
	if err := fs.funcBody(name.Text, line); err != nil {
		return err
	}
	fs.storeVar(name.Text, line)
	return nil
}

// funcBody compiles "(params) block end" into a Proto and emits OpClosure.
func (fs *funcState) funcBody(name string, line int) error {
	p := fs.p
	if err := p.expectOp("("); err != nil {
		return err
	}
	var params []string
	for !p.isOp(")") {
		n, err := p.expectName()
		if err != nil {
			return err
		}
		params = append(params, n.Text)
		if !p.acceptOp(",") {
			break
		}
	}
	if err := p.expectOp(")"); err != nil {
		return err
	}
	sub := p.newFunc(name, params)
	sub.breaks = nil
	if err := sub.block(blockEndsAt(p, "end")); err != nil {
		return err
	}
	if err := p.expectKw("end"); err != nil {
		return err
	}
	sub.emit(OpLoadNil, 0, 0, p.cur().Line)
	sub.emit(OpReturn, 1, 0, p.cur().Line)
	fs.emit(OpClosure, fs.constIdx(&ProtoVal{sub.proto}), 0, line)
	return nil
}

func (fs *funcState) loadVar(name string, line int) {
	if slot, ok := fs.resolve(name); ok {
		fs.emit(OpGetLocal, int32(slot), 0, line)
		return
	}
	fs.emit(OpGetGlobal, fs.nameIdx(name), 0, line)
}

func (fs *funcState) storeVar(name string, line int) {
	if slot, ok := fs.resolve(name); ok {
		fs.emit(OpSetLocal, int32(slot), 0, line)
		return
	}
	fs.emit(OpSetGlobal, fs.nameIdx(name), 0, line)
}

// exprStmt handles assignments and call statements.
func (fs *funcState) exprStmt() error {
	p := fs.p
	line := p.cur().Line
	kind, name, err := fs.suffixedExpr(true)
	if err != nil {
		return err
	}
	if p.acceptOp("=") {
		switch kind {
		case exprName:
			if err := fs.expr(); err != nil {
				return err
			}
			fs.storeVar(name, line)
			return nil
		case exprIndexPending:
			// Stack holds: table, key. Evaluate the value, then rotate via
			// SetIndex's operand order (value, table, key): we need value
			// first, so use SetIndex2 ordering: pops key, table, value.
			if err := fs.expr(); err != nil {
				return err
			}
			fs.emit(OpSetIndex2, 0, 0, line)
			return nil
		default:
			return errf(line, "cannot assign to this expression")
		}
	}
	switch kind {
	case exprCall:
		fs.emit(OpPop, 0, 0, line)
		return nil
	case exprIndexPending:
		// An index expression used as a statement is not valid Lua.
		return errf(line, "syntax error near %s", p.cur())
	case exprName:
		return errf(line, "syntax error: lone name %q", name)
	}
	fs.emit(OpPop, 0, 0, line)
	return nil
}

// Expression kinds returned by suffixedExpr when stmt-context parsing.
type exprKind int

const (
	exprValue exprKind = iota
	exprName
	exprCall
	exprIndexPending // stack: table, key (not yet loaded)
)

// expr compiles a full expression (value on stack).
func (fs *funcState) expr() error { return fs.orExpr() }

func (fs *funcState) orExpr() error {
	if err := fs.andExpr(); err != nil {
		return err
	}
	for fs.p.isKw("or") {
		line := fs.p.advance().Line
		j := fs.emit(OpJumpIfKeep, 0, 0, line)
		fs.emit(OpPop, 0, 0, line)
		if err := fs.andExpr(); err != nil {
			return err
		}
		fs.patch(j, fs.here())
	}
	return nil
}

func (fs *funcState) andExpr() error {
	if err := fs.cmpExpr(); err != nil {
		return err
	}
	for fs.p.isKw("and") {
		line := fs.p.advance().Line
		j := fs.emit(OpJumpIfNotKeep, 0, 0, line)
		fs.emit(OpPop, 0, 0, line)
		if err := fs.cmpExpr(); err != nil {
			return err
		}
		fs.patch(j, fs.here())
	}
	return nil
}

func (fs *funcState) cmpExpr() error {
	if err := fs.concatExpr(); err != nil {
		return err
	}
	for {
		var kind int32 = -1
		switch {
		case fs.p.isOp("=="):
			kind = luaEq
		case fs.p.isOp("~="):
			kind = luaNe
		case fs.p.isOp("<"):
			kind = luaLt
		case fs.p.isOp("<="):
			kind = luaLe
		case fs.p.isOp(">"):
			kind = luaGt
		case fs.p.isOp(">="):
			kind = luaGe
		default:
			return nil
		}
		line := fs.p.advance().Line
		if err := fs.concatExpr(); err != nil {
			return err
		}
		fs.emit(OpBin, kind, 0, line)
	}
}

func (fs *funcState) concatExpr() error {
	if err := fs.addExpr(); err != nil {
		return err
	}
	for fs.p.isOp("..") {
		line := fs.p.advance().Line
		if err := fs.addExpr(); err != nil {
			return err
		}
		fs.emit(OpConcat, 0, 0, line)
	}
	return nil
}

func (fs *funcState) addExpr() error {
	if err := fs.mulExpr(); err != nil {
		return err
	}
	for {
		var kind int32 = -1
		if fs.p.isOp("+") {
			kind = luaAdd
		} else if fs.p.isOp("-") {
			kind = luaSub
		} else {
			return nil
		}
		line := fs.p.advance().Line
		if err := fs.mulExpr(); err != nil {
			return err
		}
		fs.emit(OpBin, kind, 0, line)
	}
}

func (fs *funcState) mulExpr() error {
	if err := fs.unaryExpr(); err != nil {
		return err
	}
	for {
		var kind int32 = -1
		switch {
		case fs.p.isOp("*"):
			kind = luaMul
		case fs.p.isOp("/"):
			kind = luaDiv
		case fs.p.isOp("%"):
			kind = luaMod
		default:
			return nil
		}
		line := fs.p.advance().Line
		if err := fs.unaryExpr(); err != nil {
			return err
		}
		fs.emit(OpBin, kind, 0, line)
	}
}

func (fs *funcState) unaryExpr() error {
	p := fs.p
	switch {
	case p.isKw("not"):
		line := p.advance().Line
		if err := fs.unaryExpr(); err != nil {
			return err
		}
		fs.emit(OpNot, 0, 0, line)
		return nil
	case p.isOp("-"):
		line := p.advance().Line
		if err := fs.unaryExpr(); err != nil {
			return err
		}
		fs.emit(OpUnm, 0, 0, line)
		return nil
	case p.isOp("#"):
		line := p.advance().Line
		if err := fs.unaryExpr(); err != nil {
			return err
		}
		fs.emit(OpLen, 0, 0, line)
		return nil
	}
	_, _, err := fs.suffixedExpr(false)
	return err
}

// suffixedExpr parses a primary expression with call/index/field suffixes.
// In statement context (stmtCtx), an indexing suffix at the very end is left
// as (table, key) on the stack so an assignment can consume it; otherwise it
// is loaded.
func (fs *funcState) suffixedExpr(stmtCtx bool) (exprKind, string, error) {
	p := fs.p
	t := p.cur()
	kind := exprValue
	var lastName string
	switch {
	case t.Kind == TokInt:
		p.advance()
		fs.emit(OpLoadK, fs.constIdx(MkInt(t.Int)), 0, t.Line)
	case t.Kind == TokStr:
		p.advance()
		fs.emit(OpLoadK, fs.constIdx(MkStr(t.Text)), 0, t.Line)
	case p.isKw("nil"):
		p.advance()
		fs.emit(OpLoadNil, 0, 0, t.Line)
	case p.isKw("true"):
		p.advance()
		fs.emit(OpLoadBool, 1, 0, t.Line)
	case p.isKw("false"):
		p.advance()
		fs.emit(OpLoadBool, 0, 0, t.Line)
	case p.isKw("function"):
		p.advance()
		if err := fs.funcBody("<anon>", t.Line); err != nil {
			return 0, "", err
		}
	case p.isOp("("):
		p.advance()
		if err := fs.expr(); err != nil {
			return 0, "", err
		}
		if err := p.expectOp(")"); err != nil {
			return 0, "", err
		}
	case p.isOp("{"):
		if err := fs.tableConstructor(); err != nil {
			return 0, "", err
		}
	case t.Kind == TokName:
		p.advance()
		lastName = t.Text
		kind = exprName
		// Defer the load: a bare name in stmt context may be an assignment
		// target. For suffixes we need the value, so load lazily below.
		if !fs.hasSuffix() {
			if stmtCtx {
				return exprName, lastName, nil
			}
			fs.loadVar(lastName, t.Line)
			return exprName, lastName, nil
		}
		fs.loadVar(lastName, t.Line)
	default:
		return 0, "", errf(t.Line, "unexpected token %s", t)
	}
	// Suffix chain.
	for {
		switch {
		case p.isOp("."):
			line := p.advance().Line
			name, err := p.expectName()
			if err != nil {
				return 0, "", err
			}
			if stmtCtx && !fs.hasSuffix() && p.isOp("=") {
				fs.emit(OpLoadK, fs.constIdx(MkStr(name.Text)), 0, line)
				return exprIndexPending, "", nil
			}
			fs.emit(OpGetField, fs.nameIdx(name.Text), 0, line)
			kind = exprValue
		case p.isOp("["):
			line := p.advance().Line
			if err := fs.expr(); err != nil {
				return 0, "", err
			}
			if err := p.expectOp("]"); err != nil {
				return 0, "", err
			}
			if stmtCtx && !fs.hasSuffix() && p.isOp("=") {
				return exprIndexPending, "", nil
			}
			fs.emit(OpGetIndex, 0, 0, line)
			kind = exprValue
		case p.isOp("("):
			line := p.advance().Line
			n, err := fs.callArgs()
			if err != nil {
				return 0, "", err
			}
			fs.emit(OpCall, int32(n), 0, line)
			kind = exprCall
		case p.cur().Kind == TokStr:
			// f "literal" call sugar.
			line := p.cur().Line
			s := p.advance()
			fs.emit(OpLoadK, fs.constIdx(MkStr(s.Text)), 0, line)
			fs.emit(OpCall, 1, 0, line)
			kind = exprCall
		case p.isOp(":"):
			line := p.advance().Line
			name, err := p.expectName()
			if err != nil {
				return 0, "", err
			}
			fs.emit(OpSelfField, fs.nameIdx(name.Text), 0, line)
			if err := p.expectOp("("); err != nil {
				return 0, "", err
			}
			n, err := fs.callArgs()
			if err != nil {
				return 0, "", err
			}
			fs.emit(OpCall, int32(n+1), 0, line)
			kind = exprCall
		default:
			return kind, lastName, nil
		}
	}
}

// hasSuffix reports whether the next token begins a suffix.
func (fs *funcState) hasSuffix() bool {
	p := fs.p
	return p.isOp(".") || p.isOp("[") || p.isOp("(") || p.isOp(":") || p.cur().Kind == TokStr
}

func (fs *funcState) callArgs() (int, error) {
	p := fs.p
	n := 0
	for !p.isOp(")") {
		if err := fs.expr(); err != nil {
			return 0, err
		}
		n++
		if !p.acceptOp(",") {
			break
		}
	}
	return n, p.expectOp(")")
}

func (fs *funcState) tableConstructor() error {
	p := fs.p
	line := p.cur().Line
	if err := p.expectOp("{"); err != nil {
		return err
	}
	fs.emit(OpNewTable, 0, 0, line)
	for !p.isOp("}") {
		switch {
		case p.isOp("["):
			p.advance()
			if err := fs.expr(); err != nil {
				return err
			}
			if err := p.expectOp("]"); err != nil {
				return err
			}
			if err := p.expectOp("="); err != nil {
				return err
			}
			if err := fs.expr(); err != nil {
				return err
			}
			fs.emit(OpSetIndexKeep, 0, 0, line)
		case p.cur().Kind == TokName && p.toks[p.pos+1].Kind == TokOp && p.toks[p.pos+1].Text == "=":
			name := p.advance()
			p.advance() // =
			fs.emit(OpLoadK, fs.constIdx(MkStr(name.Text)), 0, name.Line)
			if err := fs.expr(); err != nil {
				return err
			}
			fs.emit(OpSetIndexKeep, 0, 0, line)
		default:
			if err := fs.expr(); err != nil {
				return err
			}
			fs.emit(OpAppend, 0, 0, line)
		}
		if !p.acceptOp(",") && !p.acceptOp(";") {
			break
		}
	}
	return p.expectOp("}")
}
