// Package minilua implements MiniLua, the Lua-like language of CHEF's second
// case study (§5.2 of the paper, standing in for Lua 5.2.2). Like the
// reference setup, the interpreter is configured for integer numbers (the
// paper switched Lua to integers because S2E's solver lacks floating point),
// and its tables, byte-wise string library and dispatch loop expose the same
// low-level path-explosion sources as MiniPy's runtime.
package minilua

import (
	"fmt"
	"strconv"
)

// TokKind enumerates MiniLua token kinds.
type TokKind uint8

// Token kinds.
const (
	TokEOF TokKind = iota
	TokName
	TokInt
	TokStr
	TokKeyword
	TokOp
)

// Token is one lexical token.
type Token struct {
	Kind TokKind
	Text string
	Int  int64
	Line int
}

func (t Token) String() string {
	switch t.Kind {
	case TokEOF:
		return "<eof>"
	case TokInt:
		return fmt.Sprintf("%d", t.Int)
	case TokStr:
		return fmt.Sprintf("%q", t.Text)
	default:
		return t.Text
	}
}

var luaKeywords = map[string]bool{
	"and": true, "break": true, "do": true, "else": true, "elseif": true,
	"end": true, "false": true, "for": true, "function": true, "if": true,
	"in": true, "local": true, "nil": true, "not": true, "or": true,
	"repeat": true, "return": true, "then": true, "true": true,
	"until": true, "while": true,
}

// SyntaxError reports a compilation problem.
type SyntaxError struct {
	Line int
	Msg  string
}

func (e *SyntaxError) Error() string { return fmt.Sprintf("line %d: %s", e.Line, e.Msg) }

func errf(line int, format string, args ...interface{}) *SyntaxError {
	return &SyntaxError{Line: line, Msg: fmt.Sprintf(format, args...)}
}

// Lex tokenizes MiniLua source.
func Lex(src string) ([]Token, error) {
	var out []Token
	pos, line := 0, 1
	at := func(i int) byte {
		if pos+i >= len(src) {
			return 0
		}
		return src[pos+i]
	}
	for pos < len(src) {
		c := src[pos]
		switch {
		case c == '\n':
			line++
			pos++
		case c == ' ' || c == '\t' || c == '\r':
			pos++
		case c == '-' && at(1) == '-':
			// Comment: long [[ ]] or line.
			pos += 2
			if at(0) == '[' && at(1) == '[' {
				pos += 2
				for pos < len(src) && !(src[pos] == ']' && at(1) == ']') {
					if src[pos] == '\n' {
						line++
					}
					pos++
				}
				pos += 2
			} else {
				for pos < len(src) && src[pos] != '\n' {
					pos++
				}
			}
		case c >= '0' && c <= '9':
			start := pos
			if c == '0' && (at(1) == 'x' || at(1) == 'X') {
				pos += 2
				for isHex(at(0)) {
					pos++
				}
				v, err := strconv.ParseInt(src[start+2:pos], 16, 64)
				if err != nil {
					return nil, errf(line, "bad hex literal")
				}
				out = append(out, Token{Kind: TokInt, Int: v, Line: line})
				continue
			}
			for at(0) >= '0' && at(0) <= '9' {
				pos++
			}
			v, err := strconv.ParseInt(src[start:pos], 10, 64)
			if err != nil {
				return nil, errf(line, "bad int literal")
			}
			out = append(out, Token{Kind: TokInt, Int: v, Line: line})
		case isLuaNameStart(c):
			start := pos
			for isLuaNameChar(at(0)) {
				pos++
			}
			text := src[start:pos]
			kind := TokName
			if luaKeywords[text] {
				kind = TokKeyword
			}
			out = append(out, Token{Kind: kind, Text: text, Line: line})
		case c == '"' || c == '\'':
			quote := c
			pos++
			var buf []byte
			for {
				if pos >= len(src) {
					return nil, errf(line, "unterminated string")
				}
				ch := src[pos]
				if ch == quote {
					pos++
					break
				}
				if ch == '\n' {
					return nil, errf(line, "newline in string")
				}
				if ch == '\\' {
					pos++
					e := at(0)
					pos++
					switch e {
					case 'n':
						buf = append(buf, '\n')
					case 't':
						buf = append(buf, '\t')
					case 'r':
						buf = append(buf, '\r')
					case '0':
						buf = append(buf, 0)
					case '\\', '\'', '"':
						buf = append(buf, e)
					case 'x':
						hi, lo := at(0), at(1)
						if !isHex(hi) || !isHex(lo) {
							return nil, errf(line, "bad \\x escape")
						}
						v, _ := strconv.ParseUint(src[pos:pos+2], 16, 8)
						buf = append(buf, byte(v))
						pos += 2
					default:
						return nil, errf(line, "unknown escape \\%c", e)
					}
					continue
				}
				buf = append(buf, ch)
				pos++
			}
			out = append(out, Token{Kind: TokStr, Text: string(buf), Line: line})
		default:
			two := ""
			if pos+1 < len(src) {
				two = src[pos : pos+2]
			}
			switch two {
			case "==", "~=", "<=", ">=", "..":
				// ... is not supported; .. suffices for MiniLua.
				out = append(out, Token{Kind: TokOp, Text: two, Line: line})
				pos += 2
				continue
			}
			switch c {
			case '+', '-', '*', '/', '%', '<', '>', '=', '(', ')', '[', ']', '{', '}', ',', ';', ':', '.', '#':
				out = append(out, Token{Kind: TokOp, Text: string(c), Line: line})
				pos++
			default:
				return nil, errf(line, "unexpected character %q", string(c))
			}
		}
	}
	out = append(out, Token{Kind: TokEOF, Line: line})
	return out, nil
}

func isHex(c byte) bool {
	return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}
func isLuaNameStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}
func isLuaNameChar(c byte) bool { return isLuaNameStart(c) || (c >= '0' && c <= '9') }
