package minilua

import (
	"fmt"
	"strings"

	"chef/internal/lowlevel"
	"chef/internal/symexpr"
)

// Value is a MiniLua runtime value.
type Value interface {
	TypeName() string
}

// LuaError is a raised Lua error travelling up the interpreter (error()).
type LuaError struct {
	Msg string
}

// Error implements error.
func (e *LuaError) Error() string { return e.Msg }

func luaErrf(format string, args ...interface{}) *LuaError {
	return &LuaError{Msg: fmt.Sprintf(format, args...)}
}

// NilVal is nil.
type NilVal struct{}

// TypeName implements Value.
func (NilVal) TypeName() string { return "nil" }

// Nil is the nil singleton.
var Nil = NilVal{}

// BoolVal is a boolean with a possibly-symbolic truth.
type BoolVal struct{ B lowlevel.SVal }

// TypeName implements Value.
func (BoolVal) TypeName() string { return "boolean" }

// MkBool wraps a concrete bool.
func MkBool(b bool) BoolVal { return BoolVal{lowlevel.ConcreteBool(b)} }

// IntVal is an integer number (the paper's Lua was configured for integers).
type IntVal struct{ V lowlevel.SVal }

// TypeName implements Value.
func (IntVal) TypeName() string { return "number" }

// MkInt wraps a concrete int64.
func MkInt(v int64) IntVal { return IntVal{lowlevel.ConcreteVal(uint64(v), symexpr.W64)} }

// StrVal is a byte string.
type StrVal struct{ B []lowlevel.SVal }

// TypeName implements Value.
func (StrVal) TypeName() string { return "string" }

// MkStr builds a concrete string.
func MkStr(s string) StrVal {
	b := make([]lowlevel.SVal, len(s))
	for i := 0; i < len(s); i++ {
		b[i] = lowlevel.ConcreteVal(uint64(s[i]), symexpr.W8)
	}
	return StrVal{B: b}
}

// Len returns the concrete length.
func (s StrVal) Len() int { return len(s.B) }

// Concrete renders the concrete bytes.
func (s StrVal) Concrete() string {
	var sb strings.Builder
	for _, b := range s.B {
		sb.WriteByte(byte(b.C))
	}
	return sb.String()
}

// HasSymbolicBytes reports whether any byte is symbolic.
func (s StrVal) HasSymbolicBytes() bool {
	for _, b := range s.B {
		if b.IsSymbolic() {
			return true
		}
	}
	return false
}

// TableVal is a Lua table: an array part for dense integer keys plus an
// open-hashing part, the structure whose symbolic-key behavior §4.2's
// optimizations target.
type TableVal struct {
	arr     []Value // 1-based: arr[0] is index 1
	buckets [nBuckets][]*tableEntry
	order   []*tableEntry
	hsize   int
}

const nBuckets = 8

type tableEntry struct {
	key     Value
	val     Value
	deleted bool
}

// NewTable returns an empty table.
func NewTable() *TableVal { return &TableVal{} }

// TypeName implements Value.
func (*TableVal) TypeName() string { return "table" }

// FuncVal is a compiled Lua function.
type FuncVal struct{ Proto *Proto }

// TypeName implements Value.
func (*FuncVal) TypeName() string { return "function" }

// BuiltinVal is a native function.
type BuiltinVal struct {
	Name string
	Fn   func(vm *VM, args []Value) (Value, *LuaError)
}

// TypeName implements Value.
func (*BuiltinVal) TypeName() string { return "function" }

// Repr renders a value concretely for diagnostics.
func Repr(v Value) string {
	switch x := v.(type) {
	case NilVal:
		return "nil"
	case BoolVal:
		if x.B.C != 0 {
			return "true"
		}
		return "false"
	case IntVal:
		return fmt.Sprintf("%d", x.V.Int())
	case StrVal:
		return fmt.Sprintf("%q", x.Concrete())
	case *TableVal:
		return fmt.Sprintf("table: %p", x)
	case *FuncVal:
		return "function: " + x.Proto.Name
	case *BuiltinVal:
		return "builtin: " + x.Name
	default:
		return fmt.Sprintf("<%T>", v)
	}
}

func c64(v uint64) lowlevel.SVal { return lowlevel.ConcreteVal(v, symexpr.W64) }
func c8v(b byte) lowlevel.SVal   { return lowlevel.ConcreteVal(uint64(b), symexpr.W8) }
