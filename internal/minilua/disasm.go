package minilua

import (
	"fmt"
	"strings"
)

// Disasm renders a compiled chunk's bytecode, in the spirit of luac -l: one
// section per prototype with offsets, source lines, mnemonics and resolved
// operands. Useful for debugging the compiler and inspecting HLPCs.
func Disasm(p *Program) string {
	var sb strings.Builder
	for _, proto := range p.Protos {
		fmt.Fprintf(&sb, "proto %d <%s> params=%d slots=%d:\n",
			proto.BlockID, proto.Name, proto.NumParams, proto.NumSlots)
		lastLine := -1
		for i, in := range proto.Instrs {
			lineCol := "    "
			if in.Line != lastLine {
				lineCol = fmt.Sprintf("%4d", in.Line)
				lastLine = in.Line
			}
			fmt.Fprintf(&sb, "%s %5d  %-16s %s\n", lineCol, i, opName(in.Op), luaOperand(proto, in))
		}
	}
	return sb.String()
}

var luaOpNames = map[OpCode]string{
	OpNop: "NOP", OpLoadK: "LOADK", OpLoadNil: "LOADNIL", OpLoadBool: "LOADBOOL",
	OpGetLocal: "GETLOCAL", OpSetLocal: "SETLOCAL", OpGetGlobal: "GETGLOBAL",
	OpSetGlobal: "SETGLOBAL", OpNewTable: "NEWTABLE", OpGetIndex: "GETINDEX",
	OpSetIndex: "SETINDEX", OpSetIndex2: "SETINDEX2", OpSetIndexKeep: "SETINDEXK",
	OpGetField: "GETFIELD", OpSetField: "SETFIELD", OpSelfField: "SELF",
	OpCall: "CALL", OpReturn: "RETURN", OpJump: "JMP", OpJumpIfNot: "JMPIFNOT",
	OpJumpIfNotKeep: "JMPIFNOTK", OpJumpIfKeep: "JMPIFK", OpPop: "POP",
	OpBin: "BINOP", OpUnm: "UNM", OpNot: "NOT", OpLen: "LEN", OpConcat: "CONCAT",
	OpForPrep: "FORPREP", OpForLoop: "FORLOOP", OpTForCall: "TFORCALL",
	OpClosure: "CLOSURE", OpAppend: "APPEND",
}

func opName(op OpCode) string {
	if s, ok := luaOpNames[op]; ok {
		return s
	}
	return fmt.Sprintf("OP(%d)", uint32(op))
}

var luaBinNames = []string{"+", "-", "*", "/", "%", "==", "~=", "<", "<=", ">", ">="}

func luaOperand(proto *Proto, in Instr) string {
	switch in.Op {
	case OpLoadK, OpClosure:
		if int(in.Arg) < len(proto.Consts) {
			if pv, ok := proto.Consts[in.Arg].(*ProtoVal); ok {
				return fmt.Sprintf("%d (<proto %s>)", in.Arg, pv.Proto.Name)
			}
			return fmt.Sprintf("%d (%s)", in.Arg, Repr(proto.Consts[in.Arg]))
		}
	case OpGetGlobal, OpSetGlobal, OpGetField, OpSetField, OpSelfField:
		if int(in.Arg) < len(proto.Names) {
			return fmt.Sprintf("%d (%s)", in.Arg, proto.Names[in.Arg])
		}
	case OpGetLocal, OpSetLocal:
		return fmt.Sprintf("slot %d", in.Arg)
	case OpJump, OpJumpIfNot, OpJumpIfNotKeep, OpJumpIfKeep, OpTForCall:
		return fmt.Sprintf("-> %d", in.Arg)
	case OpForPrep:
		return fmt.Sprintf("base %d", in.Arg)
	case OpForLoop:
		return fmt.Sprintf("-> %d base %d", in.Arg, in.B)
	case OpBin:
		if int(in.Arg) < len(luaBinNames) {
			return luaBinNames[in.Arg]
		}
	case OpCall:
		return fmt.Sprintf("n=%d", in.Arg)
	case OpLoadBool:
		return fmt.Sprintf("%v", in.Arg != 0)
	}
	return ""
}
