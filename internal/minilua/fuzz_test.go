package minilua_test

import (
	"testing"

	"chef/internal/minilua"
	"chef/internal/packages"
)

// FuzzCompile drives the MiniLua lexer, parser and compiler with arbitrary
// source text. Malformed programs must surface as error returns — any panic
// is a front-end bug. The corpus is seeded with the real evaluation-package
// sources plus small probes for each syntactic corner.
//
// Run with: go test ./internal/minilua/ -fuzz FuzzCompile -fuzztime 5s
func FuzzCompile(f *testing.F) {
	for _, p := range packages.LuaPackages() {
		f.Add(p.Source)
	}
	seeds := []string{
		"",
		"local function f(x) return x + 1 end\n",
		"local t = {a = 1, [2] = 'b', 'c'}\n",
		"for i = 1, 10, 2 do print(i) end\n",
		"for k, v in pairs({}) do end\n",
		"while true do break end\n",
		"repeat x = x - 1 until x == 0\n",
		"if not (x == 5) then y = 1 elseif z then y = 2 else y = 3 end\n",
		"local s = 'a' .. \"b\" .. [[long\nstring]]\n",
		"local ok, err = pcall(function() error('boom') end)\n",
		"t.x.y.z = t[1][2]\n",
		"s = #t .. (-x) ^ 2\n",
		"function t:m(a, ...) return self, a end\n",
		"--[[ block\ncomment ]] x = 1 -- line comment\n",
		"::label:: goto label\n",
		"local a, b, c = f()\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := minilua.Compile(src)
		if err == nil && prog == nil {
			t.Fatal("Compile returned nil program without error")
		}
	})
}
