package minilua

import (
	"chef/internal/lowlevel"
)

// Config mirrors minipy.Config for the Lua interpreter: the same three §4.2
// optimization groups apply (the paper's Lua case study eliminated string
// interning and used integer numbers).
type Config struct {
	HashNeutralization    bool
	AvoidSymbolicPointers bool
	FastPathElimination   bool
}

// Vanilla is the unmodified interpreter build.
var Vanilla = Config{}

// Optimized is the fully optimized build.
var Optimized = Config{true, true, true}

// Low-level program counters of the MiniLua interpreter (disjoint from
// MiniPy's so a process exploring both keeps sites distinct).
const (
	llpcBase lowlevel.LLPC = 0x2000 + iota
	llpcJumpCond
	llpcForLoop
	llpcIntDivZero
	llpcIntSign
	llpcIntEq
	llpcStrEqFast
	llpcStrEqFinal
	llpcStrLtByte
	llpcStrFindPos
	llpcStrIntern
	llpcTableBucket
	llpcTableKeyCmp
	llpcTableArrayIdx
	llpcStrAlloc
	llpcToNumber
	llpcStrCase
)

// OpCode enumerates MiniLua bytecode operations.
type OpCode uint32

// Bytecode operations.
const (
	OpNop   OpCode = iota
	OpLoadK        // push Consts[arg]
	OpLoadNil
	OpLoadBool  // arg 0/1
	OpGetLocal  // push slot arg
	OpSetLocal  // pop into slot arg
	OpGetGlobal // push global Names[arg]
	OpSetGlobal
	OpNewTable
	OpGetIndex     // pop key, table
	OpSetIndex     // pop key, table, value
	OpSetIndex2    // pop value, key, table
	OpSetIndexKeep // pop value, key; table stays (constructor)
	OpGetField     // Names[arg]
	OpSetField     // pop table, value
	OpSelfField    // pop table; push table, table[Names[arg]] (method call setup)
	OpCall         // arg = #args
	OpReturn       // arg: 0 no value (push nil), 1 value on stack
	OpJump
	OpJumpIfNot     // pop
	OpJumpIfNotKeep // peek (and)
	OpJumpIfKeep    // peek (or)
	OpPop
	OpBin // arg = binary op kind
	OpUnm // unary minus
	OpNot
	OpLen
	OpConcat
	OpForPrep  // numeric for: pops step, limit, init; stores into slots arg..arg+2
	OpForLoop  // arg = jump target on loop continue; slots from Arg2 packed
	OpTForCall // generic for over table iterator
	OpClosure  // push function from Consts[arg] (*ProtoVal)
	OpAppend   // pop value, table: array append (constructor sugar)
)

// Binary kinds for OpBin.
const (
	luaAdd = iota
	luaSub
	luaMul
	luaDiv
	luaMod
	luaEq
	luaNe
	luaLt
	luaLe
	luaGt
	luaGe
)

// Instr is one instruction. B carries the auxiliary operand for the few
// two-operand instructions (numeric for).
type Instr struct {
	Op   OpCode
	Arg  int32
	B    int32
	Line int
}

// Proto is a compiled MiniLua function prototype.
type Proto struct {
	Name      string
	BlockID   uint32
	NumParams int
	NumSlots  int
	Instrs    []Instr
	Consts    []Value
	Names     []string
}

// HLPCAt returns the HLPC of instruction offset i: function address and
// instruction offset, as §5.2 constructs Lua HLPCs.
func (p *Proto) HLPCAt(i int) uint64 { return uint64(p.BlockID)<<16 | uint64(uint16(i)) }

// ProtoVal wraps a Proto as a constant.
type ProtoVal struct{ Proto *Proto }

// TypeName implements Value.
func (*ProtoVal) TypeName() string { return "proto" }

// Program is a compiled MiniLua chunk.
type Program struct {
	Main   *Proto
	Protos []*Proto
	Source string
}

// ProtoByID returns the prototype with the given block id.
func (p *Program) ProtoByID(id uint32) *Proto {
	if int(id) < len(p.Protos) {
		return p.Protos[id]
	}
	return nil
}

// LineOf maps an HLPC to its source line.
func (p *Program) LineOf(hlpc uint64) int {
	pr := p.ProtoByID(uint32(hlpc >> 16))
	if pr == nil {
		return 0
	}
	off := int(hlpc & 0xffff)
	if off >= len(pr.Instrs) {
		return 0
	}
	return pr.Instrs[off].Line
}

// CoverableLines returns all source lines carrying instructions.
func (p *Program) CoverableLines() map[int]bool {
	lines := map[int]bool{}
	for _, pr := range p.Protos {
		for _, in := range pr.Instrs {
			if in.Line > 0 {
				lines[in.Line] = true
			}
		}
	}
	return lines
}
