package minilua

import (
	"chef/internal/lowlevel"
	"chef/internal/symexpr"
)

// arrayLen returns the border of the array part (Lua's #).
func (t *TableVal) arrayLen() int {
	n := len(t.arr)
	for n > 0 {
		if _, isNil := t.arr[n-1].(NilVal); !isNil {
			break
		}
		n--
	}
	return n
}

// hashKey computes the hash of a table key.
func (vm *VM) hashKey(key Value) (lowlevel.SVal, *LuaError) {
	if vm.cfg.HashNeutralization {
		return c64(0), nil
	}
	switch k := key.(type) {
	case IntVal:
		return k.V, nil
	case StrVal:
		// Lua's string hash: h = h*31 ^ byte, seeded with the length.
		h := c64(uint64(k.Len()))
		for _, b := range k.B {
			vm.m.Step(1)
			h = lowlevel.XorV(lowlevel.MulV(h, c64(31)), lowlevel.ZExtV(b, symexpr.W64))
		}
		return h, nil
	case BoolVal:
		return lowlevel.ZExtV(k.B, symexpr.W64), nil
	}
	return lowlevel.SVal{}, luaErrf("table index is a %s value", key.TypeName())
}

func (vm *VM) bucketOf(h lowlevel.SVal) int {
	b := lowlevel.AndV(h, c64(nBuckets-1))
	if b.IsSymbolic() {
		return int(vm.m.ConcretizeFork(llpcTableBucket, b)) & (nBuckets - 1)
	}
	return int(b.C) & (nBuckets - 1)
}

// arrayIndexOf resolves an integer key against the array part; ok is false
// when the key belongs in the hash part. Symbolic in-range indices are
// symbolic pointers and concretize by forking.
func (vm *VM) arrayIndexOf(t *TableVal, k IntVal, forWrite bool) (int, bool) {
	n := int64(len(t.arr))
	hi := n
	if forWrite {
		hi = n + 1 // writing one past the end extends the array part
	}
	inRange := lowlevel.BoolAndV(
		lowlevel.SleV(c64(1), k.V),
		lowlevel.SleV(k.V, c64(uint64(hi))),
	)
	if !vm.m.Branch(llpcTableArrayIdx, inRange) {
		return 0, false
	}
	v := k.V
	if v.IsSymbolic() {
		return int(vm.m.ConcretizeFork(llpcTableArrayIdx+1000, v)) - 1, true
	}
	return int(v.C) - 1, true
}

// indexGet implements t[k] (returns nil for missing keys, as Lua does).
func (vm *VM) indexGet(tv, key Value) (Value, *LuaError) {
	vm.m.Step(1)
	switch t := tv.(type) {
	case *TableVal:
		if _, isNil := key.(NilVal); isNil {
			return Nil, nil
		}
		if ik, ok := key.(IntVal); ok {
			if idx, inArr := vm.arrayIndexOf(t, ik, false); inArr {
				return t.arr[idx], nil
			}
		}
		h, err := vm.hashKey(key)
		if err != nil {
			return nil, err
		}
		b := vm.bucketOf(h)
		for _, e := range t.buckets[b] {
			if e.deleted {
				continue
			}
			vm.m.Step(1)
			if vm.valuesEqualBranch(e.key, key) {
				return e.val, nil
			}
		}
		return Nil, nil
	case StrVal:
		// Indexing a string looks up the string library (s.sub etc. is not
		// Lua, but s:method() routes through OpSelfField; plain indexing is
		// an error).
		return nil, luaErrf("attempt to index a string value")
	}
	return nil, luaErrf("attempt to index a %s value", tv.TypeName())
}

// indexSet implements t[k] = v, with nil assignment acting as deletion.
func (vm *VM) indexSet(tv, key, val Value) *LuaError {
	vm.m.Step(1)
	t, ok := tv.(*TableVal)
	if !ok {
		return luaErrf("attempt to index a %s value", tv.TypeName())
	}
	if _, isNil := key.(NilVal); isNil {
		return luaErrf("table index is nil")
	}
	if ik, ok := key.(IntVal); ok {
		if idx, inArr := vm.arrayIndexOf(t, ik, true); inArr {
			if idx == len(t.arr) {
				t.arr = append(t.arr, val)
			} else {
				t.arr[idx] = val
			}
			return nil
		}
	}
	h, err := vm.hashKey(key)
	if err != nil {
		return err
	}
	b := vm.bucketOf(h)
	_, isNilVal := val.(NilVal)
	for _, e := range t.buckets[b] {
		if e.deleted {
			continue
		}
		vm.m.Step(1)
		if vm.valuesEqualBranch(e.key, key) {
			if isNilVal {
				e.deleted = true
				t.hsize--
			} else {
				e.val = val
			}
			return nil
		}
	}
	if isNilVal {
		return nil
	}
	e := &tableEntry{key: key, val: val}
	t.buckets[b] = append(t.buckets[b], e)
	t.order = append(t.order, e)
	t.hsize++
	return nil
}

// luaIterator drives generic for loops.
type luaIterator interface {
	Value
	next(vm *VM) (k, v Value, more bool)
}

// pairsIter iterates the array part then the hash part.
type pairsIter struct {
	t  *TableVal
	ai int
	hi int
}

func (*pairsIter) TypeName() string { return "iterator" }

func (it *pairsIter) next(vm *VM) (Value, Value, bool) {
	vm.m.Step(1)
	for it.ai < len(it.t.arr) {
		i := it.ai
		it.ai++
		if _, isNil := it.t.arr[i].(NilVal); !isNil {
			return MkInt(int64(i + 1)), it.t.arr[i], true
		}
	}
	for it.hi < len(it.t.order) {
		e := it.t.order[it.hi]
		it.hi++
		if !e.deleted {
			return e.key, e.val, true
		}
	}
	return nil, nil, false
}

// ipairsIter iterates 1..n of the array part, stopping at the first nil.
type ipairsIter struct {
	t *TableVal
	i int
}

func (*ipairsIter) TypeName() string { return "iterator" }

func (it *ipairsIter) next(vm *VM) (Value, Value, bool) {
	vm.m.Step(1)
	if it.i >= len(it.t.arr) {
		return nil, nil, false
	}
	v := it.t.arr[it.i]
	if _, isNil := v.(NilVal); isNil {
		return nil, nil, false
	}
	it.i++
	return MkInt(int64(it.i)), v, true
}
