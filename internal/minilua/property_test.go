package minilua

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"chef/internal/lowlevel"
)

func evalLuaExpr(t *testing.T, expr string) string {
	t.Helper()
	out, res := runLua(t, "print("+expr+")")
	if res.Error != "" {
		t.Fatalf("%s: error %s", expr, res.Error)
	}
	if len(out) != 1 {
		t.Fatalf("%s: printed %v", expr, out)
	}
	return out[0]
}

func goLuaFloorDiv(a, b int64) int64 {
	q := a / b
	if (a%b != 0) && ((a < 0) != (b < 0)) {
		q--
	}
	return q
}

func goLuaMod(a, b int64) int64 {
	r := a % b
	if r != 0 && ((r < 0) != (b < 0)) {
		r += b
	}
	return r
}

// TestLuaDivModDifferential compares / and % against Lua's floor semantics.
func TestLuaDivModDifferential(t *testing.T) {
	f := func(a int16, b int16) bool {
		if b == 0 {
			return true
		}
		got := evalLuaExpr(t, fmt.Sprintf("(%d) / (%d)", a, b))
		if got != fmt.Sprint(goLuaFloorDiv(int64(a), int64(b))) {
			t.Logf("div(%d,%d) = %s", a, b, got)
			return false
		}
		got = evalLuaExpr(t, fmt.Sprintf("(%d) %% (%d)", a, b))
		return got == fmt.Sprint(goLuaMod(int64(a), int64(b)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func quoteForLua(s string) string {
	var sb strings.Builder
	sb.WriteByte('"')
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '"', '\\':
			sb.WriteByte('\\')
			sb.WriteByte(c)
		case '\n':
			sb.WriteString("\\n")
		case '\t':
			sb.WriteString("\\t")
		case '\r':
			sb.WriteString("\\r")
		default:
			sb.WriteByte(c)
		}
	}
	sb.WriteByte('"')
	return sb.String()
}

func randASCII(r *rand.Rand, n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('!' + r.Intn(90))
	}
	return string(b)
}

// TestLuaStringDifferential compares sub/find/upper/lower/rep against Go.
func TestLuaStringDifferential(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	luaSub := func(s string, i, j int) string {
		n := len(s)
		if i < 0 {
			i = n + i + 1
		}
		if j < 0 {
			j = n + j + 1
		}
		if i < 1 {
			i = 1
		}
		if j > n {
			j = n
		}
		if i > j {
			return ""
		}
		return s[i-1 : j]
	}
	for trial := 0; trial < 50; trial++ {
		s := randASCII(r, 1+r.Intn(9))
		q := quoteForLua(s)
		i := r.Intn(2*len(s)+3) - len(s) - 1
		j := r.Intn(2*len(s)+3) - len(s) - 1
		if got, want := evalLuaExpr(t, fmt.Sprintf("string.sub(%s, %d, %d)", q, i, j)), luaSub(s, i, j); got != want {
			t.Fatalf("sub(%q,%d,%d) = %q, want %q", s, i, j, got, want)
		}
		needle := randASCII(r, 1+r.Intn(2))
		if r.Intn(3) == 0 {
			pos := r.Intn(len(s))
			s = s[:pos] + needle + s[pos:]
			q = quoteForLua(s)
		}
		goPos := strings.Index(s, needle)
		want := "nil"
		if goPos >= 0 {
			want = fmt.Sprint(goPos + 1)
		}
		if got := evalLuaExpr(t, fmt.Sprintf("%s:find(%s)", q, quoteForLua(needle))); got != want {
			t.Fatalf("find(%q,%q) = %s, want %s", s, needle, got, want)
		}
		if got, want := evalLuaExpr(t, q+":upper()"), strings.ToUpper(s); got != want {
			t.Fatalf("upper(%q) = %q, want %q", s, got, want)
		}
		if got, want := evalLuaExpr(t, q+":lower()"), strings.ToLower(s); got != want {
			t.Fatalf("lower(%q) = %q, want %q", s, got, want)
		}
		n := r.Intn(4)
		if got, want := evalLuaExpr(t, fmt.Sprintf("string.rep(%s, %d)", q, n)), strings.Repeat(s, n); got != want {
			t.Fatalf("rep(%q,%d) = %q, want %q", s, n, got, want)
		}
	}
}

// TestLuaTableModelBased drives a table with random ops against a Go model,
// across all optimization configurations.
func TestLuaTableModelBased(t *testing.T) {
	for _, cfg := range []Config{Vanilla, Optimized} {
		prog := MustCompile(`
t = {}
function tset(k, v)
    t[k] = v
end
function tget(k)
    local v = t[k]
    if v == nil then
        return -1
    end
    return v
end
function tdel(k)
    t[k] = nil
end
`)
		m := lowlevel.NewConcreteMachine(nil, 1<<24)
		var vm *VM
		var out Outcome
		m.RunConcrete(func(mm *lowlevel.Machine) { vm, out = RunModule(prog, mm, nil, cfg) })
		if out.Error != "" {
			t.Fatalf("setup: %s", out.Error)
		}
		model := map[string]int64{}
		r := rand.New(rand.NewSource(21))
		keys := []string{"x", "y", "zz", "q1", "q2", "longer-key"}
		call := func(name string, args ...Value) Value {
			var v Value
			var err *LuaError
			st := m.RunConcrete(func(*lowlevel.Machine) { v, err = vm.CallFunction(name, args) })
			if st != lowlevel.RunCompleted || err != nil {
				t.Fatalf("table op: %v %v", st, err)
			}
			return v
		}
		for op := 0; op < 250; op++ {
			k := keys[r.Intn(len(keys))]
			switch r.Intn(3) {
			case 0:
				val := r.Int63n(500)
				call("tset", MkStr(k), MkInt(val))
				model[k] = val
			case 1:
				v := call("tget", MkStr(k))
				want, ok := model[k]
				if !ok {
					want = -1
				}
				if got := v.(IntVal).V.Int(); got != want {
					t.Fatalf("cfg %+v get(%q) = %d, want %d", cfg, k, got, want)
				}
			case 2:
				call("tdel", MkStr(k))
				delete(model, k)
			}
		}
	}
}

// TestLuaArrayPartDifferential checks the array-part semantics of # and
// table.insert/remove against a Go slice model.
func TestLuaArrayPartDifferential(t *testing.T) {
	prog := MustCompile(`
a = {}
function push(v)
    table.insert(a, v)
end
function popend()
    return table.remove(a)
end
function alen()
    return #a
end
function aget(i)
    return a[i]
end
`)
	m := lowlevel.NewConcreteMachine(nil, 1<<24)
	var vm *VM
	m.RunConcrete(func(mm *lowlevel.Machine) { vm, _ = RunModule(prog, mm, nil, Optimized) })
	var model []int64
	r := rand.New(rand.NewSource(22))
	call := func(name string, args ...Value) Value {
		var v Value
		var err *LuaError
		st := m.RunConcrete(func(*lowlevel.Machine) { v, err = vm.CallFunction(name, args) })
		if st != lowlevel.RunCompleted || err != nil {
			t.Fatalf("%s: %v %v", name, st, err)
		}
		return v
	}
	for op := 0; op < 200; op++ {
		switch r.Intn(4) {
		case 0:
			v := r.Int63n(100)
			call("push", MkInt(v))
			model = append(model, v)
		case 1:
			got := call("popend")
			if len(model) == 0 {
				if _, isNil := got.(NilVal); !isNil {
					t.Fatalf("pop of empty = %v", got)
				}
			} else {
				want := model[len(model)-1]
				model = model[:len(model)-1]
				if got.(IntVal).V.Int() != want {
					t.Fatalf("pop = %v, want %d", got, want)
				}
			}
		case 2:
			if got := call("alen").(IntVal).V.Int(); got != int64(len(model)) {
				t.Fatalf("len = %d, want %d", got, len(model))
			}
		case 3:
			if len(model) > 0 {
				i := r.Intn(len(model))
				if got := call("aget", MkInt(int64(i+1))).(IntVal).V.Int(); got != model[i] {
					t.Fatalf("a[%d] = %d, want %d", i+1, got, model[i])
				}
			}
		}
	}
}

// TestLuaConcatNumbers checks tostring coercion in concat.
func TestLuaConcatNumbers(t *testing.T) {
	f := func(n int16) bool {
		got := evalLuaExpr(t, fmt.Sprintf(`"v=" .. (%d)`, n))
		return got == fmt.Sprintf("v=%d", n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestLuaToNumberDifferential checks tonumber against strconv semantics for
// integer-looking strings.
func TestLuaToNumberDifferential(t *testing.T) {
	cases := map[string]string{
		`tonumber("0")`:     "0",
		`tonumber("00")`:    "0",
		`tonumber("-0")`:    "0",
		`tonumber("+7")`:    "7",
		`tonumber("-")`:     "nil",
		`tonumber("+")`:     "nil",
		`tonumber("")`:      "nil",
		`tonumber("1a")`:    "nil",
		`tonumber("  1")`:   "nil", // MiniLua does not skip whitespace
		`tonumber("12345")`: "12345",
	}
	for expr, want := range cases {
		if got := evalLuaExpr(t, expr); got != want {
			t.Errorf("%s = %s, want %s", expr, got, want)
		}
	}
}
