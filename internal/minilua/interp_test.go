package minilua

import (
	"testing"

	"chef/internal/lowlevel"
)

func runLua(t *testing.T, src string) ([]string, Outcome) {
	t.Helper()
	prog, err := Compile(src)
	if err != nil {
		t.Fatalf("compile: %v\nsource:\n%s", err, src)
	}
	m := lowlevel.NewConcreteMachine(nil, 1<<22)
	var out Outcome
	status := m.RunConcrete(func(m *lowlevel.Machine) {
		_, out = RunModule(prog, m, nil, Optimized)
	})
	if status != lowlevel.RunCompleted {
		t.Fatalf("run status %v", status)
	}
	return out.Printed, out
}

func wantLua(t *testing.T, src string, want ...string) {
	t.Helper()
	got, out := runLua(t, src)
	if out.Error != "" {
		t.Fatalf("unexpected error %q\nprinted: %v", out.Error, got)
	}
	if len(got) != len(want) {
		t.Fatalf("printed %v (%d lines), want %v", got, len(got), want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("line %d: got %q, want %q", i, got[i], want[i])
		}
	}
}

func wantLuaError(t *testing.T, src, errSub string) {
	t.Helper()
	_, out := runLua(t, src)
	if out.Error == "" {
		t.Fatalf("expected error containing %q, got success", errSub)
	}
	if errSub != "" && !contains(out.Error, errSub) {
		t.Fatalf("error %q does not contain %q", out.Error, errSub)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestLuaArithmetic(t *testing.T) {
	wantLua(t, `
local x = 3 + 4 * 2
print(x)
print(17 / 5, 17 % 5)
print(-17 / 5, -17 % 5)
print(2 - 10)
`, "11", "3\t2", "-4\t3", "-8")
}

func TestLuaStringsAndConcat(t *testing.T) {
	wantLua(t, `
local s = "hello" .. " " .. "world"
print(s)
print(#s)
print(string.sub(s, 1, 5))
print(s:sub(7))
print(s:upper())
print(string.lower("ABC"))
print(s:find("world"))
print(s:find("zzz"))
print(string.byte("A"), string.char(66, 67))
print(string.rep("ab", 3))
print("n=" .. 42)
`, "hello world", "11", "hello", "world", "HELLO WORLD", "abc", "7", "nil", "65\tBC", "ababab", "n=42")
}

func TestLuaTables(t *testing.T) {
	wantLua(t, `
local t = {10, 20, 30}
print(#t, t[1], t[3])
t[4] = 40
print(#t)
local d = {name = "x", ["key"] = 5}
print(d.name, d["key"])
d.other = true
print(d.other, d.missing)
d.name = nil
print(d.name)
table.insert(t, 50)
print(#t, t[5])
local r = table.remove(t)
print(r, #t)
table.insert(t, 1, 5)
print(t[1], t[2])
print(table.concat({"a", "b", "c"}, "-"))
`, "3\t10\t30", "4", "x\t5", "true\tnil", "nil", "5\t50", "50\t4", "5\t10", "a-b-c")
}

func TestLuaControlFlow(t *testing.T) {
	wantLua(t, `
local total = 0
for i = 1, 5 do
    total = total + i
end
print(total)
for i = 10, 1, -3 do
    total = total + 1
end
print(total)
local i = 0
while true do
    i = i + 1
    if i == 3 then break end
end
print(i)
local n = 0
repeat
    n = n + 1
until n >= 4
print(n)
if n > 3 then
    print("big")
elseif n > 1 then
    print("mid")
else
    print("small")
end
`, "15", "19", "3", "4", "big")
}

func TestLuaGenericFor(t *testing.T) {
	wantLua(t, `
local t = {"a", "b"}
for i, v in ipairs(t) do
    print(i, v)
end
local d = {}
d.x = 1
d.y = 2
local total = 0
for k, v in pairs(d) do
    total = total + v
end
print(total)
for k in pairs({z = 9}) do
    print(k)
end
`, "1\ta", "2\tb", "3", "z")
}

func TestLuaFunctions(t *testing.T) {
	wantLua(t, `
function add(a, b)
    return a + b
end
print(add(2, 3))
local function double(x)
    return x * 2
end
print(double(21))
local f = function(x) return x + 1 end
print(f(10))
function fib(n)
    if n < 2 then return n end
    return fib(n-1) + fib(n-2)
end
print(fib(10))
local t = {}
function t.method(x)
    return x .. "!"
end
print(t.method("hi"))
`, "5", "42", "11", "55", "hi!")
}

func TestLuaLogic(t *testing.T) {
	wantLua(t, `
print(true and false, true or false, not true)
print(1 and 2)
print(nil or "x")
print(nil == nil, nil == false)
print("a" == "a", "a" ~= "b")
print("abc" < "abd", "b" > "a")
print(3 == 3, 3 ~= 4, 2 <= 2)
`, "false\ttrue\tfalse", "2", "x", "true\tfalse", "true\ttrue", "true\ttrue", "true\ttrue\ttrue")
}

func TestLuaErrorsAndPcall(t *testing.T) {
	wantLua(t, `
local r = pcall(function() error("boom") end)
print(r[1], r[2])
local ok = pcall(function() return 7 end)
print(ok[1], ok[2])
`, "false\tboom", "true\t7")
	wantLuaError(t, `error("direct")`, "direct")
	wantLuaError(t, `local x = 1 / 0`, "n/0")
	wantLuaError(t, `local x = {} + 1`, "arithmetic")
	wantLuaError(t, `local x = nil .. "a"`, "concatenate")
	wantLuaError(t, `undefined_fn()`, "call")
	wantLuaError(t, `assert(false, "custom assert")`, "custom assert")
}

func TestLuaToNumberToString(t *testing.T) {
	wantLua(t, `
print(tonumber("42"), tonumber("-3"), tonumber("12x"))
print(tostring(5), tostring(nil), tostring(true))
print(type(1), type("s"), type({}), type(nil), type(print))
`, "42\t-3\tnil", "5\tnil\ttrue", "number\tstring\ttable\tnil\tfunction")
}

func TestLuaComments(t *testing.T) {
	wantLua(t, `
-- line comment
local x = 1 -- trailing
--[[ long
comment ]]
print(x)
`, "1")
}

func TestLuaScoping(t *testing.T) {
	wantLua(t, `
local x = 1
do
    local x = 2
    print(x)
end
print(x)
g = 10
local function bump()
    g = g + 1
end
bump()
print(g)
`, "2", "1", "11")
}

func TestLuaCompileErrors(t *testing.T) {
	bad := []string{
		"if x print(1) end",
		"for i = 1 do end",
		"local = 5",
		"print(",
		"function() end", // statement function needs a name
		"x = ",
		"while do end",
	}
	for _, src := range bad {
		if _, err := Compile(src); err == nil {
			t.Errorf("expected compile error for %q", src)
		}
	}
}

func TestLuaCoverage(t *testing.T) {
	prog, err := Compile("local x = 1\nif x > 0 then\n    print(1)\nelse\n    print(2)\nend\n")
	if err != nil {
		t.Fatal(err)
	}
	m := lowlevel.NewConcreteMachine(nil, 1<<20)
	h := NewCoverageHost(prog)
	m.RunConcrete(func(m *lowlevel.Machine) { RunModule(prog, m, h, Vanilla) })
	if !h.Lines[3] {
		t.Errorf("line 3 must be covered: %v", h.Lines)
	}
	if h.Lines[5] {
		t.Errorf("line 5 must not be covered: %v", h.Lines)
	}
	if len(prog.CoverableLines()) < 4 {
		t.Errorf("coverable lines: %v", prog.CoverableLines())
	}
}

func TestLuaOptLevelsAgreeConcretely(t *testing.T) {
	src := `
local d = {}
d["alpha"] = 1
d["beta"] = 2
local s = "Hello, World"
print(d["alpha"] + d["beta"])
print(s:lower())
print(s:find("World"))
print(table.concat({1, 2, 3}, ","))
`
	var results [][]string
	for _, cfg := range []Config{Vanilla, {AvoidSymbolicPointers: true}, {AvoidSymbolicPointers: true, HashNeutralization: true}, Optimized} {
		prog := MustCompile(src)
		m := lowlevel.NewConcreteMachine(nil, 1<<22)
		var out Outcome
		m.RunConcrete(func(m *lowlevel.Machine) { _, out = RunModule(prog, m, nil, cfg) })
		if out.Error != "" {
			t.Fatalf("cfg %+v: error %s", cfg, out.Error)
		}
		results = append(results, out.Printed)
	}
	for i := 1; i < len(results); i++ {
		if len(results[i]) != len(results[0]) {
			t.Fatalf("output length differs between opt levels")
		}
		for j := range results[0] {
			if results[i][j] != results[0][j] {
				t.Errorf("opt level %d line %d: %q vs %q", i, j, results[i][j], results[0][j])
			}
		}
	}
}

func TestLuaHang(t *testing.T) {
	prog := MustCompile("while true do end")
	m := lowlevel.NewConcreteMachine(nil, 2000)
	status := m.RunConcrete(func(m *lowlevel.Machine) { RunModule(prog, m, nil, Vanilla) })
	if status != lowlevel.RunHang {
		t.Fatalf("status = %v, want hang", status)
	}
}

func TestLuaStringCallSugar(t *testing.T) {
	wantLua(t, `
function shout(s)
    return s .. "!"
end
print(shout "hey")
`, "hey!")
}

func TestLuaStringFormatAndGsub(t *testing.T) {
	wantLua(t, `
print(string.format("%s=%d", "x", 42))
print(string.format("100%%"))
print(string.format("a%sb%sc", 1, 2))
print(string.gsub("hello world", "o", "0"))
print(string.gsub("aaa", "aa", "b"))
print(("x-y-z"):gsub("-", "+"))
`, "x=42", "100%", "a1b2c", "hell0 w0rld", "ba", "x+y+z")
}

func TestLuaDisasm(t *testing.T) {
	prog := MustCompile(`
local function f(a)
    if a > 1 then
        return a * 2
    end
    return 0
end
print(f(3))
`)
	out := Disasm(prog)
	for _, want := range []string{"proto 0 <<main>>", "<proto f>", "GETLOCAL", "BINOP", "JMPIFNOT", "RETURN", "CALL"} {
		if !hasSub(out, want) {
			t.Errorf("disassembly missing %q:\n%s", want, out)
		}
	}
}

func hasSub(s, sub string) bool { return contains(s, sub) }
