package minilua

import (
	"chef/internal/lowlevel"
	"chef/internal/symexpr"
)

// Native string routines, sharing the fast-path/eliminated split of §4.2
// with the MiniPy runtime.

// strEq returns string equality as a width-1 value.
func (vm *VM) strEq(a, b StrVal) lowlevel.SVal {
	if len(a.B) != len(b.B) {
		return lowlevel.ConcreteBool(false)
	}
	if vm.cfg.FastPathElimination {
		acc := lowlevel.ConcreteBool(true)
		for i := range a.B {
			vm.m.Step(1)
			acc = lowlevel.BoolAndV(acc, lowlevel.EqV(a.B[i], b.B[i]))
		}
		return acc
	}
	for i := range a.B {
		vm.m.Step(1)
		if vm.m.Branch(llpcStrEqFast, lowlevel.NeV(a.B[i], b.B[i])) {
			return lowlevel.ConcreteBool(false)
		}
	}
	return lowlevel.ConcreteBool(true)
}

// strOrder implements <, <=, >, >= lexicographically.
func (vm *VM) strOrder(kind int, a, b StrVal) lowlevel.SVal {
	n := len(a.B)
	if len(b.B) < n {
		n = len(b.B)
	}
	for i := 0; i < n; i++ {
		vm.m.Step(1)
		if vm.m.Branch(llpcStrLtByte, lowlevel.UltV(a.B[i], b.B[i])) {
			return lowlevel.ConcreteBool(kind == luaLt || kind == luaLe)
		}
		if vm.m.Branch(llpcStrLtByte, lowlevel.UltV(b.B[i], a.B[i])) {
			return lowlevel.ConcreteBool(kind == luaGt || kind == luaGe)
		}
	}
	switch kind {
	case luaLt:
		return lowlevel.ConcreteBool(len(a.B) < len(b.B))
	case luaLe:
		return lowlevel.ConcreteBool(len(a.B) <= len(b.B))
	case luaGt:
		return lowlevel.ConcreteBool(len(a.B) > len(b.B))
	default:
		return lowlevel.ConcreteBool(len(a.B) >= len(b.B))
	}
}

// strMatchAt reports whether needle occurs at pos.
func (vm *VM) strMatchAt(hay, needle StrVal, pos int) lowlevel.SVal {
	if vm.cfg.FastPathElimination {
		acc := lowlevel.ConcreteBool(true)
		for j := range needle.B {
			vm.m.Step(1)
			acc = lowlevel.BoolAndV(acc, lowlevel.EqV(hay.B[pos+j], needle.B[j]))
		}
		return acc
	}
	for j := range needle.B {
		vm.m.Step(1)
		if vm.m.Branch(llpcStrEqFast, lowlevel.NeV(hay.B[pos+j], needle.B[j])) {
			return lowlevel.ConcreteBool(false)
		}
	}
	return lowlevel.ConcreteBool(true)
}

// strFindPlain implements string.find(s, pat, init, true): plain substring
// search, one branch per candidate position.
func (vm *VM) strFindPlain(hay, needle StrVal, start int) int {
	if start < 1 {
		start = 1
	}
	for pos := start - 1; pos+len(needle.B) <= len(hay.B); pos++ {
		vm.m.Step(1)
		if vm.m.Branch(llpcStrFindPos, vm.strMatchAt(hay, needle, pos)) {
			return pos + 1 // Lua positions are 1-based
		}
	}
	return -1
}

// strIndexByte extracts one byte as a 1-char string, with the interning
// table fork of the vanilla build (Lua interns short strings).
func (vm *VM) strIndexByte(s StrVal, i int) StrVal {
	b := s.B[i]
	if !vm.cfg.AvoidSymbolicPointers && b.IsSymbolic() {
		c := vm.m.ConcretizeFork(llpcStrIntern, b)
		return StrVal{B: []lowlevel.SVal{c8v(byte(c))}}
	}
	return StrVal{B: []lowlevel.SVal{b}}
}

// strSub implements string.sub with Lua's index conventions.
func (vm *VM) strSub(s StrVal, i, j int) StrVal {
	n := len(s.B)
	if i < 0 {
		i = n + i + 1
	}
	if j < 0 {
		j = n + j + 1
	}
	if i < 1 {
		i = 1
	}
	if j > n {
		j = n
	}
	if i > j {
		return StrVal{}
	}
	return StrVal{B: append([]lowlevel.SVal(nil), s.B[i-1:j]...)}
}

// strRep implements string.rep with the allocation-size treatment of §4.2.
func (vm *VM) strRep(s StrVal, n IntVal) (Value, *LuaError) {
	var count int64
	capN := int64(4096 / maxInt(1, len(s.B)))
	if !n.V.IsSymbolic() {
		count = n.V.Int()
	} else if vm.cfg.AvoidSymbolicPointers {
		ub := vm.m.UpperBound(n.V)
		_ = ub
		count = int64(vm.m.ConcretizeSilent(n.V))
	} else {
		count = int64(vm.m.ConcretizeFork(llpcStrAlloc, n.V))
	}
	if count < 0 {
		count = 0
	}
	if count > capN {
		return nil, luaErrf("resulting string too large")
	}
	var out []lowlevel.SVal
	for i := int64(0); i < count; i++ {
		vm.m.Step(1)
		out = append(out, s.B...)
	}
	return StrVal{B: out}, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// strCase converts case, branch-per-byte in the vanilla build.
func (vm *VM) strCase(s StrVal, toLower bool) StrVal {
	out := make([]lowlevel.SVal, len(s.B))
	var lo, hi byte
	if toLower {
		lo, hi = 'A', 'Z'
	} else {
		lo, hi = 'a', 'z'
	}
	for i, b := range s.B {
		vm.m.Step(1)
		inRange := lowlevel.BoolAndV(lowlevel.UleV(c8v(lo), b), lowlevel.UleV(b, c8v(hi)))
		if vm.cfg.FastPathElimination {
			d := lowlevel.MulV(lowlevel.ZExtV(inRange, symexpr.W8), lowlevel.ConcreteVal(32, symexpr.W8))
			if toLower {
				out[i] = lowlevel.AddV(b, d)
			} else {
				out[i] = lowlevel.SubV(b, d)
			}
			continue
		}
		if vm.m.Branch(llpcStrCase, inRange) {
			if toLower {
				out[i] = lowlevel.AddV(b, c8v(32))
			} else {
				out[i] = lowlevel.SubV(b, c8v(32))
			}
		} else {
			out[i] = b
		}
	}
	return StrVal{B: out}
}
