package minilua

import (
	"chef/internal/lowlevel"
	"chef/internal/symexpr"
)

// Host receives the high-level trace, as in minipy.
type Host interface {
	LogPC(hlpc uint64, opcode uint32)
}

type nopHost struct{}

func (nopHost) LogPC(uint64, uint32) {}

// VM interprets compiled MiniLua over a low-level machine — the instrumented
// Lua interpreter of §5.2.
type VM struct {
	prog    *Program
	m       *lowlevel.Machine
	host    Host
	cfg     Config
	globals map[string]Value
	printed []string
	depth   int
}

// NewVM builds a VM.
func NewVM(prog *Program, m *lowlevel.Machine, host Host, cfg Config) *VM {
	if host == nil {
		host = nopHost{}
	}
	vm := &VM{prog: prog, m: m, host: host, cfg: cfg, globals: map[string]Value{}}
	vm.installStdlib()
	return vm
}

// Machine exposes the low-level machine.
func (vm *VM) Machine() *lowlevel.Machine { return vm.m }

// Globals exposes the global table namespace.
func (vm *VM) Globals() map[string]Value { return vm.globals }

// Printed returns print output.
func (vm *VM) Printed() []string { return vm.printed }

// Run executes the main chunk.
func (vm *VM) Run() (Value, *LuaError) {
	return vm.callProto(vm.prog.Main, nil)
}

// CallFunction invokes a global function by name.
func (vm *VM) CallFunction(name string, args []Value) (Value, *LuaError) {
	fn, ok := vm.globals[name]
	if !ok {
		return nil, luaErrf("attempt to call a nil value (global '%s')", name)
	}
	return vm.call(fn, args)
}

const maxCallDepth = 64

func (vm *VM) call(fn Value, args []Value) (Value, *LuaError) {
	vm.m.Step(1)
	switch f := fn.(type) {
	case *FuncVal:
		return vm.callProto(f.Proto, args)
	case *BuiltinVal:
		return f.Fn(vm, args)
	}
	return nil, luaErrf("attempt to call a %s value", fn.TypeName())
}

func (vm *VM) callProto(p *Proto, args []Value) (Value, *LuaError) {
	vm.depth++
	defer func() { vm.depth-- }()
	if vm.depth > maxCallDepth {
		return nil, luaErrf("stack overflow")
	}
	slots := make([]Value, p.NumSlots)
	for i := range slots {
		slots[i] = Nil
	}
	for i := 0; i < p.NumParams && i < len(args); i++ {
		slots[i] = args[i]
	}
	var stack []Value
	push := func(v Value) { stack = append(stack, v) }
	pop := func() Value {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		return v
	}
	ip := 0
	for {
		if ip >= len(p.Instrs) {
			return Nil, nil
		}
		in := p.Instrs[ip]
		vm.host.LogPC(p.HLPCAt(ip), uint32(in.Op))
		vm.m.Step(1)
		ip++
		switch in.Op {
		case OpNop:
		case OpLoadK:
			push(p.Consts[in.Arg])
		case OpLoadNil:
			push(Nil)
		case OpLoadBool:
			push(MkBool(in.Arg != 0))
		case OpGetLocal:
			push(slots[in.Arg])
		case OpSetLocal:
			slots[in.Arg] = pop()
		case OpGetGlobal:
			name := p.Names[in.Arg]
			if v, ok := vm.globals[name]; ok {
				push(v)
			} else {
				push(Nil)
			}
		case OpSetGlobal:
			vm.globals[p.Names[in.Arg]] = pop()
		case OpNewTable:
			push(NewTable())
		case OpGetIndex:
			key := pop()
			tbl := pop()
			v, err := vm.indexGet(tbl, key)
			if err != nil {
				return nil, err
			}
			push(v)
		case OpSetIndex: // stack: value, table, key
			key := pop()
			tbl := pop()
			val := pop()
			if err := vm.indexSet(tbl, key, val); err != nil {
				return nil, err
			}
		case OpSetIndex2: // stack: table, key, value
			val := pop()
			key := pop()
			tbl := pop()
			if err := vm.indexSet(tbl, key, val); err != nil {
				return nil, err
			}
		case OpSetIndexKeep: // stack: table, key, value; table stays
			val := pop()
			key := pop()
			tbl := stack[len(stack)-1]
			if err := vm.indexSet(tbl, key, val); err != nil {
				return nil, err
			}
		case OpAppend: // stack: table, value; table stays
			val := pop()
			tbl, ok := stack[len(stack)-1].(*TableVal)
			if !ok {
				return nil, luaErrf("internal: append to non-table")
			}
			tbl.arr = append(tbl.arr, val)
		case OpGetField:
			tbl := pop()
			v, err := vm.indexGet(tbl, MkStr(p.Names[in.Arg]))
			if err != nil {
				return nil, err
			}
			push(v)
		case OpSelfField:
			obj := pop()
			var method Value
			switch o := obj.(type) {
			case *TableVal:
				mv, err := vm.indexGet(o, MkStr(p.Names[in.Arg]))
				if err != nil {
					return nil, err
				}
				method = mv
			case StrVal:
				mv, ok := vm.stringMethod(p.Names[in.Arg])
				if !ok {
					return nil, luaErrf("attempt to call method '%s' on a string", p.Names[in.Arg])
				}
				method = mv
			default:
				return nil, luaErrf("attempt to index a %s value", obj.TypeName())
			}
			push(method)
			push(obj)
		case OpCall:
			n := int(in.Arg)
			args := make([]Value, n)
			for i := n - 1; i >= 0; i-- {
				args[i] = pop()
			}
			fn := pop()
			v, err := vm.call(fn, args)
			if err != nil {
				return nil, err
			}
			push(v)
		case OpReturn:
			return pop(), nil
		case OpJump:
			ip = int(in.Arg)
		case OpJumpIfNot:
			if !vm.m.Branch(llpcJumpCond, vm.truth(pop())) {
				ip = int(in.Arg)
			}
		case OpJumpIfNotKeep:
			if !vm.m.Branch(llpcJumpCond, vm.truth(stack[len(stack)-1])) {
				ip = int(in.Arg)
			}
		case OpJumpIfKeep:
			if vm.m.Branch(llpcJumpCond, vm.truth(stack[len(stack)-1])) {
				ip = int(in.Arg)
			}
		case OpPop:
			pop()
		case OpBin:
			r := pop()
			l := pop()
			v, err := vm.binop(int(in.Arg), l, r)
			if err != nil {
				return nil, err
			}
			push(v)
		case OpUnm:
			v, ok := pop().(IntVal)
			if !ok {
				return nil, luaErrf("attempt to perform arithmetic on a non-number")
			}
			push(IntVal{lowlevel.NegV(v.V)})
		case OpNot:
			push(BoolVal{lowlevel.NotV(vm.truth(pop()))})
		case OpLen:
			v := pop()
			switch x := v.(type) {
			case StrVal:
				push(MkInt(int64(x.Len())))
			case *TableVal:
				push(MkInt(int64(x.arrayLen())))
			default:
				return nil, luaErrf("attempt to get length of a %s value", v.TypeName())
			}
		case OpConcat:
			r := pop()
			l := pop()
			ls, err := vm.coerceStr(l)
			if err != nil {
				return nil, err
			}
			rs, err := vm.coerceStr(r)
			if err != nil {
				return nil, err
			}
			out := make([]lowlevel.SVal, 0, len(ls.B)+len(rs.B))
			out = append(out, ls.B...)
			out = append(out, rs.B...)
			push(StrVal{B: out})
		case OpForPrep:
			step := pop()
			limit := pop()
			init := pop()
			si, ok := step.(IntVal)
			if !ok || si.V.IsSymbolic() {
				return nil, luaErrf("'for' step must be a concrete number")
			}
			ii, ok := init.(IntVal)
			if !ok {
				return nil, luaErrf("'for' initial value must be a number")
			}
			li, ok := limit.(IntVal)
			if !ok {
				return nil, luaErrf("'for' limit must be a number")
			}
			slots[in.Arg] = IntVal{lowlevel.SubV(ii.V, si.V)}
			slots[in.Arg+1] = li
			slots[in.Arg+2] = si
		case OpForLoop:
			base := in.B
			v := slots[base].(IntVal)
			limit := slots[base+1].(IntVal)
			step := slots[base+2].(IntVal)
			next := lowlevel.AddV(v.V, step.V)
			var cond lowlevel.SVal
			if step.V.Int() > 0 {
				cond = lowlevel.SleV(next, limit.V)
			} else {
				cond = lowlevel.SleV(limit.V, next)
			}
			if vm.m.Branch(llpcForLoop, cond) {
				slots[base] = IntVal{next}
				ip = int(in.Arg)
			}
		case OpTForCall:
			it, ok := slots[in.B].(luaIterator)
			if !ok {
				return nil, luaErrf("attempt to iterate a %s value (use pairs/ipairs)", slots[in.B].TypeName())
			}
			k, v, more := it.next(vm)
			if !more {
				ip = int(in.Arg)
				continue
			}
			push(k)
			push(v)
		case OpClosure:
			pv := p.Consts[in.Arg].(*ProtoVal)
			push(&FuncVal{Proto: pv.Proto})
		default:
			return nil, luaErrf("bad opcode %d", in.Op)
		}
	}
}

// truth implements Lua truthiness: only nil and false are false.
func (vm *VM) truth(v Value) lowlevel.SVal {
	switch x := v.(type) {
	case NilVal:
		return lowlevel.ConcreteBool(false)
	case BoolVal:
		return x.B
	default:
		return lowlevel.ConcreteBool(true)
	}
}

// coerceStr converts numbers to strings for concat.
func (vm *VM) coerceStr(v Value) (StrVal, *LuaError) {
	switch x := v.(type) {
	case StrVal:
		return x, nil
	case IntVal:
		return vm.intToStr(x.V), nil
	}
	return StrVal{}, luaErrf("attempt to concatenate a %s value", v.TypeName())
}

// intToStr converts an integer to decimal with the usual digit-count loop.
func (vm *VM) intToStr(v lowlevel.SVal) StrVal {
	neg := vm.m.Branch(llpcIntSign, lowlevel.SltV(v, c64(0)))
	mag := v
	if neg {
		mag = lowlevel.NegV(v)
	}
	var digits []lowlevel.SVal
	for i := 0; i < 20; i++ {
		vm.m.Step(1)
		digits = append(digits, lowlevel.TruncV(lowlevel.AddV(lowlevel.URemV(mag, c64(10)), c64('0')), symexpr.W8))
		mag = lowlevel.UDivV(mag, c64(10))
		if !vm.m.Branch(llpcIntSign, lowlevel.NeV(mag, c64(0))) {
			break
		}
	}
	var out []lowlevel.SVal
	if neg {
		out = append(out, c8v('-'))
	}
	for i := len(digits) - 1; i >= 0; i-- {
		out = append(out, digits[i])
	}
	return StrVal{B: out}
}

// binop implements arithmetic and comparison.
func (vm *VM) binop(kind int, l, r Value) (Value, *LuaError) {
	li, lok := l.(IntVal)
	ri, rok := r.(IntVal)
	switch kind {
	case luaAdd, luaSub, luaMul, luaDiv, luaMod:
		if !lok || !rok {
			// Lua coerces numeric strings; MiniLua requires tonumber().
			return nil, luaErrf("attempt to perform arithmetic on a %s value", nonNumber(l, r))
		}
		switch kind {
		case luaAdd:
			return IntVal{lowlevel.AddV(li.V, ri.V)}, nil
		case luaSub:
			return IntVal{lowlevel.SubV(li.V, ri.V)}, nil
		case luaMul:
			return IntVal{lowlevel.MulV(li.V, ri.V)}, nil
		default:
			q, rem, err := vm.intDivMod(li.V, ri.V)
			if err != nil {
				return nil, err
			}
			if kind == luaDiv {
				return IntVal{q}, nil
			}
			return IntVal{rem}, nil
		}
	case luaEq, luaNe:
		b := vm.valuesEqual(l, r)
		if kind == luaNe {
			b = lowlevel.NotV(b)
		}
		return BoolVal{b}, nil
	default: // ordering
		if lok && rok {
			switch kind {
			case luaLt:
				return BoolVal{lowlevel.SltV(li.V, ri.V)}, nil
			case luaLe:
				return BoolVal{lowlevel.SleV(li.V, ri.V)}, nil
			case luaGt:
				return BoolVal{lowlevel.SltV(ri.V, li.V)}, nil
			default:
				return BoolVal{lowlevel.SleV(ri.V, li.V)}, nil
			}
		}
		ls, lsok := l.(StrVal)
		rs, rsok := r.(StrVal)
		if lsok && rsok {
			return BoolVal{vm.strOrder(kind, ls, rs)}, nil
		}
		return nil, luaErrf("attempt to compare %s with %s", l.TypeName(), r.TypeName())
	}
}

func nonNumber(l, r Value) string {
	if _, ok := l.(IntVal); !ok {
		return l.TypeName()
	}
	return r.TypeName()
}

// intDivMod implements Lua's floor division and modulo on integers.
func (vm *VM) intDivMod(a, b lowlevel.SVal) (lowlevel.SVal, lowlevel.SVal, *LuaError) {
	if vm.m.Branch(llpcIntDivZero, lowlevel.EqV(b, c64(0))) {
		return lowlevel.SVal{}, lowlevel.SVal{}, luaErrf("attempt to perform 'n/0'")
	}
	zero := c64(0)
	na := vm.m.Branch(llpcIntSign, lowlevel.SltV(a, zero))
	nb := vm.m.Branch(llpcIntSign, lowlevel.SltV(b, zero))
	am, bm := a, b
	if na {
		am = lowlevel.NegV(a)
	}
	if nb {
		bm = lowlevel.NegV(b)
	}
	qm := lowlevel.UDivV(am, bm)
	rm := lowlevel.URemV(am, bm)
	if na == nb {
		r := rm
		if na {
			r = lowlevel.NegV(rm)
		}
		return qm, r, nil
	}
	if vm.m.Branch(llpcIntSign, lowlevel.NeV(rm, zero)) {
		q := lowlevel.NegV(lowlevel.AddV(qm, c64(1)))
		r := lowlevel.SubV(bm, rm)
		if nb {
			r = lowlevel.NegV(r)
		}
		return q, r, nil
	}
	return lowlevel.NegV(qm), zero, nil
}

// valuesEqual computes == as a width-1 value, branching inside string
// comparison per the fast-path configuration.
func (vm *VM) valuesEqual(l, r Value) lowlevel.SVal {
	li, lok := l.(IntVal)
	ri, rok := r.(IntVal)
	if lok && rok {
		return lowlevel.EqV(li.V, ri.V)
	}
	ls, lsok := l.(StrVal)
	rs, rsok := r.(StrVal)
	if lsok && rsok {
		return vm.strEq(ls, rs)
	}
	lb, lbok := l.(BoolVal)
	rb, rbok := r.(BoolVal)
	if lbok && rbok {
		return lowlevel.EqV(lb.B, rb.B)
	}
	if _, ok := l.(NilVal); ok {
		_, ok2 := r.(NilVal)
		return lowlevel.ConcreteBool(ok2)
	}
	if lt, ok := l.(*TableVal); ok {
		rt, ok2 := r.(*TableVal)
		return lowlevel.ConcreteBool(ok2 && lt == rt)
	}
	return lowlevel.ConcreteBool(false)
}

// valuesEqualBranch resolves equality with a branch (table key scans).
func (vm *VM) valuesEqualBranch(l, r Value) bool {
	return vm.m.Branch(llpcTableKeyCmp, vm.valuesEqual(l, r))
}
