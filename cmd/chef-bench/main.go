// Command chef-bench runs the fixed benchmark matrix behind the repo's
// continuous benchmark trajectory and writes one schema-versioned JSON point
// (BENCH_<pr>.json, see internal/benchfmt). The matrix is deliberately
// small and fully deterministic: both interpreters, cold versus warm
// persistent cache, serial versus parallel workers, warm sharded-
// exploration cells at 1, 2 and 4 shard workers, incremental-solver cells
// (cold/warm at 1 and 4 shards) and deep-path DFS cell trios (oneshot,
// incremental, bdd) that measure each stateful backend's per-query solver
// speedup — incremental asserted as a geometric mean across the deep-path
// package set, bdd as a best-of gate anchored by the boolean-dominated
// flagmaze target — all at seed 42. The
// deterministic columns (tests, virtual time, span virtual aggregates) make
// drift between two trajectory points attributable to code changes; the
// wall-clock columns record what the host actually paid — including the
// shard-scaling ratio (virtual throughput at 4 shards over 1 shard).
//
// Usage:
//
//	chef-bench -out BENCH_10.json
//	chef-bench -micro -out /tmp/bench.json   # 1-config smoke matrix for CI
//	chef-bench -validate BENCH_10.json       # schema + determinism check
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"chef/internal/benchfmt"
	"chef/internal/chef"
	"chef/internal/experiments"
	"chef/internal/minilua"
	"chef/internal/minipy"
	"chef/internal/obs"
	"chef/internal/packages"
	"chef/internal/solver"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		seed      = flag.Int64("seed", 42, "base session seed")
		budget    = flag.Int64("budget", 600_000, "virtual-time budget per session")
		stepCap   = flag.Int64("steplimit", 30_000, "per-run hang threshold")
		reps      = flag.Int("reps", 2, "sessions (distinct seeds) per configuration")
		out       = flag.String("out", "BENCH_10.json", "output file")
		bench     = flag.String("bench", "fixed-matrix", "matrix name recorded in the file")
		micro     = flag.Bool("micro", false, "run the 1-config smoke matrix (CI): simplejson, cold+warm, serial, 1 rep, reduced budget")
		validate  = flag.String("validate", "", "validate an existing BENCH file and exit")
		assertInc = flag.Float64("assert-inc-speedup", 0, "with -validate: require the incremental dfs cells' per-query solver virtual cost to beat the oneshot dfs cells by at least this ratio")
		assertBDD = flag.Float64("assert-bdd-speedup", 0, "with -validate: require the bdd dfs cells' per-query solver virtual cost to beat the oneshot dfs cells by at least this ratio on at least one deep-path package (the boolean-dominated ones carry the signal)")
	)
	flag.Parse()

	if *validate != "" {
		data, err := os.ReadFile(*validate)
		if err != nil {
			fmt.Fprintf(os.Stderr, "chef-bench: %v\n", err)
			return 1
		}
		f, err := benchfmt.Parse(data)
		if err != nil {
			fmt.Fprintf(os.Stderr, "chef-bench: %s: %v\n", *validate, err)
			return 1
		}
		fmt.Printf("chef-bench: %s ok (%s, %d configs, seed %d, %s)\n",
			*validate, f.Schema, len(f.Configs), f.Seed, f.GoVersion)
		if *assertInc > 0 {
			if err := assertIncSpeedup(f, *assertInc); err != nil {
				fmt.Fprintf(os.Stderr, "chef-bench: %s: %v\n", *validate, err)
				return 1
			}
		}
		if *assertBDD > 0 {
			if err := assertBDDSpeedup(f, *assertBDD); err != nil {
				fmt.Fprintf(os.Stderr, "chef-bench: %s: %v\n", *validate, err)
				return 1
			}
		}
		return 0
	}

	pkgNames := []string{"simplejson", "JSON"}
	caches := []string{"cold", "warm"}
	workerCounts := []int{1, 4}
	// Sharded cells run warm (the persist view is the shared warmth layer of
	// a sharded session) at 1, 2 and 4 epoch workers; the 1-shard cell is the
	// sharded semantics' own serial baseline for the scaling ratio.
	shardCounts := []int{1, 2, 4}
	// Incremental-solver cells run the sharded semantics cold and warm at
	// these shard counts; the deep-path pair below carries the speedup
	// signal, these carry the determinism contract (cold == warm, 1 == 4).
	incShardCounts := []int{1, 4}
	deepPath := true
	// Deep-path-only packages: heavier solver workloads that run just the
	// dfs speedup pair, not the full cache/worker/shard matrix. They bound
	// wall time while anchoring the aggregate speedup gate in the deep
	// arithmetic workloads incremental solving exists for; the parser
	// packages above contribute their (lower) ratios to the same geomean.
	// flagmaze is the bench-only boolean-dominated target (every branch
	// condition a single-byte flag) that carries the bdd fast-path signal;
	// see packages.Benchmarks.
	deepPkgNames := []string{"moonscript", "xlrd", "flagmaze"}
	if *micro {
		pkgNames = []string{"simplejson"}
		workerCounts = []int{1}
		shardCounts = []int{1, 2}
		incShardCounts = nil
		deepPath = false
		deepPkgNames = nil
		*reps = 1
		*bench = "micro"
		if *budget > 200_000 {
			*budget = 200_000
		}
	}

	cfg := experiments.Configuration{
		Name:     "cupa+opt",
		Strategy: chef.StrategyCUPAPath,
		PyCfg:    minipy.Optimized,
		LuaCfg:   minilua.Optimized,
	}
	file := benchfmt.File{
		Schema:    benchfmt.SchemaVersion,
		Bench:     *bench,
		Seed:      *seed,
		Budget:    *budget,
		StepLimit: *stepCap,
		Reps:      *reps,
		GoVersion: runtime.Version(),
	}

	tmp, err := os.MkdirTemp("", "chef-bench-")
	if err != nil {
		fmt.Fprintf(os.Stderr, "chef-bench: %v\n", err)
		return 1
	}
	defer os.RemoveAll(tmp)

	base := experiments.Budgets{
		Time: *budget, StepLimit: *stepCap, Reps: *reps, Seed: *seed,
		CacheMode: solver.CacheExact, Spans: true,
	}
	for _, name := range pkgNames {
		p, ok := packages.ByName(name)
		if !ok {
			fmt.Fprintf(os.Stderr, "chef-bench: unknown package %q\n", name)
			return 1
		}
		// Warm cells share one store per package, populated by an identical
		// unmeasured pass: its read side is then fixed, so the measured warm
		// run must reproduce the cold run's tests and virtual time exactly.
		warmFile := filepath.Join(tmp, name+".ndjson")
		if err := prewarm(p, cfg, base, warmFile); err != nil {
			fmt.Fprintf(os.Stderr, "chef-bench: prewarm %s: %v\n", name, err)
			return 1
		}
		for _, cache := range caches {
			for _, workers := range workerCounts {
				c, err := runCell(p, cfg, base, cache, workers, 0, warmFile)
				if err != nil {
					fmt.Fprintf(os.Stderr, "chef-bench: %s: %v\n", c.Name, err)
					return 1
				}
				fmt.Printf("%-32s tests=%-5d virt=%-10d wall=%s\n",
					c.Name, c.Tests, c.VirtTime, time.Duration(c.WallNs).Round(time.Millisecond))
				file.Configs = append(file.Configs, c)
			}
		}
		for _, shards := range shardCounts {
			c, err := runCell(p, cfg, base, "warm", 1, shards, warmFile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "chef-bench: %s: %v\n", c.Name, err)
				return 1
			}
			fmt.Printf("%-32s tests=%-5d virt=%-10d wall=%s\n",
				c.Name, c.Tests, c.VirtTime, time.Duration(c.WallNs).Round(time.Millisecond))
			file.Configs = append(file.Configs, c)
		}
		printShardScaling(p.Name, file.Configs)

		// Incremental-solver cells: the sharded semantics, cold and warm, at
		// 1 and 4 shard workers. The prewarm pass itself runs sharded (shard
		// counts are scheduling, not semantics) so the warm cells are fully
		// warm: an incremental cell's models are a function of its solver's
		// whole query stream, and only a fully-warm store — recorded from the
		// byte-identical stream — preserves them exactly (see
		// solver.Options.SolverMode).
		if len(incShardCounts) > 0 {
			incBase := base
			incBase.SolverMode = solver.ModeIncremental
			incWarmFile := filepath.Join(tmp, name+"-inc.ndjson")
			incPre := incBase
			incPre.Shards = 1
			if err := prewarm(p, cfg, incPre, incWarmFile); err != nil {
				fmt.Fprintf(os.Stderr, "chef-bench: prewarm %s (incremental): %v\n", name, err)
				return 1
			}
			for _, cache := range caches {
				for _, shards := range incShardCounts {
					c, err := runCell(p, cfg, incBase, cache, 1, shards, incWarmFile)
					if err != nil {
						fmt.Fprintf(os.Stderr, "chef-bench: %s: %v\n", c.Name, err)
						return 1
					}
					fmt.Printf("%-32s tests=%-5d virt=%-10d wall=%s\n",
						c.Name, c.Tests, c.VirtTime, time.Duration(c.WallNs).Round(time.Millisecond))
					file.Configs = append(file.Configs, c)
				}
			}
		}

		if deepPath {
			if err := runDeepPair(p, cfg, base, tmp, &file); err != nil {
				fmt.Fprintf(os.Stderr, "chef-bench: %v\n", err)
				return 1
			}
		}
	}

	for _, name := range deepPkgNames {
		p, ok := packages.ByName(name)
		if !ok {
			fmt.Fprintf(os.Stderr, "chef-bench: unknown package %q\n", name)
			return 1
		}
		if err := runDeepPair(p, cfg, base, tmp, &file); err != nil {
			fmt.Fprintf(os.Stderr, "chef-bench: %v\n", err)
			return 1
		}
	}

	if err := file.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "chef-bench: result failed validation: %v\n", err)
		return 1
	}
	data, err := benchfmt.Marshal(&file)
	if err != nil {
		fmt.Fprintf(os.Stderr, "chef-bench: %v\n", err)
		return 1
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "chef-bench: %v\n", err)
		return 1
	}
	fmt.Printf("chef-bench: wrote %d configs to %s\n", len(file.Configs), *out)
	return 0
}

// runDeepPair runs the deep-path DFS cell trio for p: DFS drives the path
// condition deep with long shared prefixes between consecutive queries —
// the workload the incremental and bdd backends exist for. All backends run
// warm from their own fully-warm store, so the recorded per-query solver
// costs are the replayed solve costs and their ratios are the solver-layer
// virtual speedups (printed per package, asserted by -assert-inc-speedup
// in aggregate and -assert-bdd-speedup on the best package).
func runDeepPair(p *packages.Package, cfg experiments.Configuration, base experiments.Budgets,
	tmp string, file *benchfmt.File) error {
	dfsCfg := cfg
	dfsCfg.Name = "dfs+opt"
	dfsCfg.Strategy = chef.StrategyDFS
	for _, sm := range []solver.SolverMode{solver.ModeOneshot, solver.ModeIncremental, solver.ModeBDD} {
		dfsBase := base
		dfsBase.SolverMode = sm
		dfsWarmFile := filepath.Join(tmp, p.Name+"-dfs-"+sm.String()+".ndjson")
		if err := prewarm(p, dfsCfg, dfsBase, dfsWarmFile); err != nil {
			return fmt.Errorf("prewarm %s (dfs, %s): %v", p.Name, sm, err)
		}
		c, err := runCell(p, dfsCfg, dfsBase, "warm", 1, 0, dfsWarmFile)
		if err != nil {
			return fmt.Errorf("%s: %v", c.Name, err)
		}
		fmt.Printf("%-32s tests=%-5d virt=%-10d wall=%s\n",
			c.Name, c.Tests, c.VirtTime, time.Duration(c.WallNs).Round(time.Millisecond))
		file.Configs = append(file.Configs, c)
	}
	printIncSpeedup(p.Name, file.Configs)
	printBDDSpeedup(p.Name, file.Configs)
	return nil
}

// prewarm populates path's persistent store with the queries of an
// unmeasured pass over the same matrix cell parameters.
func prewarm(p *packages.Package, cfg experiments.Configuration, b experiments.Budgets, path string) error {
	store, err := solver.OpenPersistentStore(path)
	if err != nil {
		return err
	}
	b.Persist = store
	b.Parallel = 1
	b.Spans = false
	experiments.RunRepeated(p, cfg, b)
	return store.Close()
}

// runCell measures one matrix cell: Reps sessions of p under cfg, totals
// read from a cell-private metrics registry (sessions merge their child
// registries into it, so totals are schedule-independent). shards > 0 runs
// each session as a sharded exploration (warm persist shared, private
// in-memory caches) driven by up to shards epoch workers.
func runCell(p *packages.Package, cfg experiments.Configuration, b experiments.Budgets,
	cache string, workers, shards int, warmFile string) (benchfmt.Config, error) {
	seg := p.Name
	strategy := ""
	if cfg.Strategy == chef.StrategyDFS {
		seg += "/dfs"
		strategy = "dfs"
	}
	solverMode := ""
	switch b.SolverMode {
	case solver.ModeIncremental:
		seg += "/inc"
		solverMode = "incremental"
	case solver.ModeBDD:
		seg += "/bdd"
		solverMode = "bdd"
	}
	name := fmt.Sprintf("%s/%s/w%d", seg, cache, workers)
	if shards > 0 {
		name = fmt.Sprintf("%s/%s/s%d", seg, cache, shards)
	}
	c := benchfmt.Config{
		Name:       name,
		Package:    p.Name,
		Language:   string(p.Lang),
		Cache:      cache,
		Workers:    workers,
		Shards:     shards,
		SolverMode: solverMode,
		Strategy:   strategy,
		Sessions:   b.Reps,
	}
	reg := obs.NewRegistry()
	b.Metrics = reg
	b.Parallel = workers
	b.Shards = shards
	if cache == "warm" {
		// Each warm cell reads a private copy of the store: a cell's
		// sessions may append queries the prewarm stream missed (an
		// incremental warm run's query stream diverges wherever a persist
		// hit bypasses the backend and shifts the context's assumption
		// state), and a shared file would leak those appends into the next
		// cell's read side, breaking cell-order independence.
		data, err := os.ReadFile(warmFile)
		if err != nil {
			return c, err
		}
		cellFile := warmFile + ".cell"
		if err := os.WriteFile(cellFile, data, 0o644); err != nil {
			return c, err
		}
		store, err := solver.OpenPersistentStore(cellFile)
		if err != nil {
			return c, err
		}
		defer store.Close()
		b.Persist = store
	}
	start := time.Now()
	experiments.RunRepeated(p, cfg, b)
	c.WallNs = int64(time.Since(start))
	if shards > 0 {
		// Cell sessions count their pre-dedup tests under chef.tests; the
		// cross-range deduplicated total is the comparable one.
		c.Tests = reg.Counter(obs.MChefTestsMerged).Value()
		c.VirtMakespan = reg.Counter(obs.MShardVirtMakespan).Value()
	} else {
		c.Tests = reg.Counter(obs.MChefTests).Value()
	}
	c.Spans = reg.SpanAggregates()
	for _, sp := range c.Spans {
		if sp.Layer == obs.SpanChefSession {
			c.VirtTime = sp.VirtTotal
		}
	}
	return c, nil
}

// printShardScaling reports the scaling payoff of sharding: the ratio of
// virtual throughput (VirtTime / VirtMakespan, virtual time explored per
// unit of the epoch schedule's critical path) between the 4-shard and
// 1-shard warm cells of one package. The makespan is the deterministic
// analogue of parallel wall time — at 1 shard it equals VirtTime, at 4 it
// is the per-epoch max worker load summed — so the ratio measures how well
// the range partition balances, independent of host core count. The
// deterministic result columns of those cells are identical by
// construction; only the makespan varies with the worker count.
func printShardScaling(pkg string, configs []benchfmt.Config) {
	var s1, s4 *benchfmt.Config
	for i := range configs {
		c := &configs[i]
		if c.Package != pkg || c.Shards == 0 {
			continue
		}
		switch c.Shards {
		case 1:
			s1 = c
		case 4:
			s4 = c
		}
	}
	if s1 == nil || s4 == nil {
		return
	}
	if s1.VirtMakespan <= 0 || s4.VirtMakespan <= 0 {
		return
	}
	t1 := float64(s1.VirtTime) / float64(s1.VirtMakespan)
	t4 := float64(s4.VirtTime) / float64(s4.VirtMakespan)
	fmt.Printf("%-32s 4-shard virtual throughput %.2fx the 1-shard baseline\n",
		pkg+" shard scaling", t4/t1)
}

// solverCheckPerQuery returns the average virtual cost of one solver.check
// span in c (VirtTotal/Count), or 0 when the span is absent.
func solverCheckPerQuery(c *benchfmt.Config) float64 {
	for i := range c.Spans {
		sp := &c.Spans[i]
		if sp.Layer == obs.SpanSolverCheck && sp.Count > 0 {
			return float64(sp.VirtTotal) / float64(sp.Count)
		}
	}
	return 0
}

// dfsSpeedup finds pkg's dfs cells for the oneshot baseline and the given
// solver mode and returns the oneshot/mode ratio of per-query solver virtual
// cost — the solver-layer speedup of that backend on the deep-path workload.
func dfsSpeedup(pkg, mode string, configs []benchfmt.Config) (float64, bool) {
	var one, alt *benchfmt.Config
	for i := range configs {
		c := &configs[i]
		if c.Package != pkg || c.Strategy != "dfs" {
			continue
		}
		switch c.SolverMode {
		case "":
			one = c
		case mode:
			alt = c
		}
	}
	if one == nil || alt == nil {
		return 0, false
	}
	po, pa := solverCheckPerQuery(one), solverCheckPerQuery(alt)
	if po <= 0 || pa <= 0 {
		return 0, false
	}
	return po / pa, true
}

// incSpeedup is dfsSpeedup for the incremental backend.
func incSpeedup(pkg string, configs []benchfmt.Config) (float64, bool) {
	return dfsSpeedup(pkg, "incremental", configs)
}

// printIncSpeedup reports the deep-path solver-layer speedup of the
// incremental backend for one package.
func printIncSpeedup(pkg string, configs []benchfmt.Config) {
	if r, ok := incSpeedup(pkg, configs); ok {
		fmt.Printf("%-32s incremental per-query solver cost %.2fx cheaper than oneshot (dfs)\n",
			pkg+" inc speedup", r)
	}
}

// printBDDSpeedup reports the deep-path solver-layer speedup of the bdd
// backend for one package.
func printBDDSpeedup(pkg string, configs []benchfmt.Config) {
	if r, ok := dfsSpeedup(pkg, "bdd", configs); ok {
		fmt.Printf("%-32s bdd per-query solver cost %.2fx cheaper than oneshot (dfs)\n",
			pkg+" bdd speedup", r)
	}
}

// assertIncSpeedup requires the aggregate solver-layer speedup of the
// incremental backend — the geometric mean of the per-package dfs cell
// pair ratios — to be at least min, with at least one pair present.
// Individual packages may sit below the bar: on short-query parser
// workloads the sliced path conditions are shallow and per-query cost is
// dominated by asserting the few fresh suffix constraints, which both
// backends pay, so the ratio plateaus near 1.2-1.5x; deep arithmetic
// workloads exceed 3x. The contract is the aggregate over the matrix's
// deep-path set, not a per-package floor.
func assertIncSpeedup(f *benchfmt.File, min float64) error {
	seen := map[string]bool{}
	logSum, pairs := 0.0, 0
	for i := range f.Configs {
		pkg := f.Configs[i].Package
		if seen[pkg] {
			continue
		}
		seen[pkg] = true
		r, ok := incSpeedup(pkg, f.Configs)
		if !ok {
			continue
		}
		pairs++
		logSum += math.Log(r)
		fmt.Printf("chef-bench: %s incremental solver speedup %.2fx\n", pkg, r)
	}
	if pairs == 0 {
		return fmt.Errorf("-assert-inc-speedup: no dfs oneshot/incremental cell pairs in file")
	}
	agg := math.Exp(logSum / float64(pairs))
	if agg < min {
		return fmt.Errorf("aggregate incremental speedup %.2fx (geomean over %d packages) below required %.2fx", agg, pairs, min)
	}
	fmt.Printf("chef-bench: aggregate incremental solver speedup %.2fx over %d packages (>= %.2fx)\n", agg, pairs, min)
	return nil
}

// assertBDDSpeedup requires the best per-package bdd dfs speedup in the file
// to be at least min. The gate is a best-of, not an aggregate: the diagram's
// fail-fast only pays on boolean-dominated streams (flagmaze), while on
// arithmetic-heavy packages every query falls back to CDCL and the ratio
// hovers near (slightly below) 1x — which is the documented degradation
// contract, not a regression. The bar proves the fast path actually wins
// where its workload exists.
func assertBDDSpeedup(f *benchfmt.File, min float64) error {
	seen := map[string]bool{}
	best, bestPkg, pairs := 0.0, "", 0
	for i := range f.Configs {
		pkg := f.Configs[i].Package
		if seen[pkg] {
			continue
		}
		seen[pkg] = true
		r, ok := dfsSpeedup(pkg, "bdd", f.Configs)
		if !ok {
			continue
		}
		pairs++
		fmt.Printf("chef-bench: %s bdd solver speedup %.2fx\n", pkg, r)
		if r > best {
			best, bestPkg = r, pkg
		}
	}
	if pairs == 0 {
		return fmt.Errorf("-assert-bdd-speedup: no dfs oneshot/bdd cell pairs in file")
	}
	if best < min {
		return fmt.Errorf("best bdd speedup %.2fx (%s, over %d packages) below required %.2fx", best, bestPkg, pairs, min)
	}
	fmt.Printf("chef-bench: best bdd solver speedup %.2fx on %s (>= %.2fx)\n", best, bestPkg, min)
	return nil
}
