// Command chef-bench runs the fixed benchmark matrix behind the repo's
// continuous benchmark trajectory and writes one schema-versioned JSON point
// (BENCH_<pr>.json, see internal/benchfmt). The matrix is deliberately
// small and fully deterministic: both interpreters, cold versus warm
// persistent cache, serial versus parallel workers, plus warm sharded-
// exploration cells at 1, 2 and 4 shard workers, all at seed 42. The
// deterministic columns (tests, virtual time, span virtual aggregates) make
// drift between two trajectory points attributable to code changes; the
// wall-clock columns record what the host actually paid — including the
// shard-scaling ratio (virtual throughput at 4 shards over 1 shard).
//
// Usage:
//
//	chef-bench -out BENCH_8.json
//	chef-bench -micro -out /tmp/bench.json   # 1-config smoke matrix for CI
//	chef-bench -validate BENCH_8.json        # schema + determinism check
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"chef/internal/benchfmt"
	"chef/internal/chef"
	"chef/internal/experiments"
	"chef/internal/minilua"
	"chef/internal/minipy"
	"chef/internal/obs"
	"chef/internal/packages"
	"chef/internal/solver"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		seed     = flag.Int64("seed", 42, "base session seed")
		budget   = flag.Int64("budget", 600_000, "virtual-time budget per session")
		stepCap  = flag.Int64("steplimit", 30_000, "per-run hang threshold")
		reps     = flag.Int("reps", 2, "sessions (distinct seeds) per configuration")
		out      = flag.String("out", "BENCH_8.json", "output file")
		bench    = flag.String("bench", "fixed-matrix", "matrix name recorded in the file")
		micro    = flag.Bool("micro", false, "run the 1-config smoke matrix (CI): simplejson, cold+warm, serial, 1 rep, reduced budget")
		validate = flag.String("validate", "", "validate an existing BENCH file and exit")
	)
	flag.Parse()

	if *validate != "" {
		data, err := os.ReadFile(*validate)
		if err != nil {
			fmt.Fprintf(os.Stderr, "chef-bench: %v\n", err)
			return 1
		}
		f, err := benchfmt.Parse(data)
		if err != nil {
			fmt.Fprintf(os.Stderr, "chef-bench: %s: %v\n", *validate, err)
			return 1
		}
		fmt.Printf("chef-bench: %s ok (%s, %d configs, seed %d, %s)\n",
			*validate, f.Schema, len(f.Configs), f.Seed, f.GoVersion)
		return 0
	}

	pkgNames := []string{"simplejson", "JSON"}
	caches := []string{"cold", "warm"}
	workerCounts := []int{1, 4}
	// Sharded cells run warm (the persist view is the shared warmth layer of
	// a sharded session) at 1, 2 and 4 epoch workers; the 1-shard cell is the
	// sharded semantics' own serial baseline for the scaling ratio.
	shardCounts := []int{1, 2, 4}
	if *micro {
		pkgNames = []string{"simplejson"}
		workerCounts = []int{1}
		shardCounts = []int{1, 2}
		*reps = 1
		*bench = "micro"
		if *budget > 200_000 {
			*budget = 200_000
		}
	}

	cfg := experiments.Configuration{
		Name:     "cupa+opt",
		Strategy: chef.StrategyCUPAPath,
		PyCfg:    minipy.Optimized,
		LuaCfg:   minilua.Optimized,
	}
	file := benchfmt.File{
		Schema:    benchfmt.SchemaVersion,
		Bench:     *bench,
		Seed:      *seed,
		Budget:    *budget,
		StepLimit: *stepCap,
		Reps:      *reps,
		GoVersion: runtime.Version(),
	}

	tmp, err := os.MkdirTemp("", "chef-bench-")
	if err != nil {
		fmt.Fprintf(os.Stderr, "chef-bench: %v\n", err)
		return 1
	}
	defer os.RemoveAll(tmp)

	base := experiments.Budgets{
		Time: *budget, StepLimit: *stepCap, Reps: *reps, Seed: *seed,
		CacheMode: solver.CacheExact, Spans: true,
	}
	for _, name := range pkgNames {
		p, ok := packages.ByName(name)
		if !ok {
			fmt.Fprintf(os.Stderr, "chef-bench: unknown package %q\n", name)
			return 1
		}
		// Warm cells share one store per package, populated by an identical
		// unmeasured pass: its read side is then fixed, so the measured warm
		// run must reproduce the cold run's tests and virtual time exactly.
		warmFile := filepath.Join(tmp, name+".ndjson")
		if err := prewarm(p, cfg, base, warmFile); err != nil {
			fmt.Fprintf(os.Stderr, "chef-bench: prewarm %s: %v\n", name, err)
			return 1
		}
		for _, cache := range caches {
			for _, workers := range workerCounts {
				c, err := runCell(p, cfg, base, cache, workers, 0, warmFile)
				if err != nil {
					fmt.Fprintf(os.Stderr, "chef-bench: %s: %v\n", c.Name, err)
					return 1
				}
				fmt.Printf("%-32s tests=%-5d virt=%-10d wall=%s\n",
					c.Name, c.Tests, c.VirtTime, time.Duration(c.WallNs).Round(time.Millisecond))
				file.Configs = append(file.Configs, c)
			}
		}
		for _, shards := range shardCounts {
			c, err := runCell(p, cfg, base, "warm", 1, shards, warmFile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "chef-bench: %s: %v\n", c.Name, err)
				return 1
			}
			fmt.Printf("%-32s tests=%-5d virt=%-10d wall=%s\n",
				c.Name, c.Tests, c.VirtTime, time.Duration(c.WallNs).Round(time.Millisecond))
			file.Configs = append(file.Configs, c)
		}
		printShardScaling(p.Name, file.Configs)
	}

	if err := file.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "chef-bench: result failed validation: %v\n", err)
		return 1
	}
	data, err := benchfmt.Marshal(&file)
	if err != nil {
		fmt.Fprintf(os.Stderr, "chef-bench: %v\n", err)
		return 1
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "chef-bench: %v\n", err)
		return 1
	}
	fmt.Printf("chef-bench: wrote %d configs to %s\n", len(file.Configs), *out)
	return 0
}

// prewarm populates path's persistent store with the queries of an
// unmeasured pass over the same matrix cell parameters.
func prewarm(p *packages.Package, cfg experiments.Configuration, b experiments.Budgets, path string) error {
	store, err := solver.OpenPersistentStore(path)
	if err != nil {
		return err
	}
	b.Persist = store
	b.Parallel = 1
	b.Spans = false
	experiments.RunRepeated(p, cfg, b)
	return store.Close()
}

// runCell measures one matrix cell: Reps sessions of p under cfg, totals
// read from a cell-private metrics registry (sessions merge their child
// registries into it, so totals are schedule-independent). shards > 0 runs
// each session as a sharded exploration (warm persist shared, private
// in-memory caches) driven by up to shards epoch workers.
func runCell(p *packages.Package, cfg experiments.Configuration, b experiments.Budgets,
	cache string, workers, shards int, warmFile string) (benchfmt.Config, error) {
	name := fmt.Sprintf("%s/%s/w%d", p.Name, cache, workers)
	if shards > 0 {
		name = fmt.Sprintf("%s/%s/s%d", p.Name, cache, shards)
	}
	c := benchfmt.Config{
		Name:     name,
		Package:  p.Name,
		Language: string(p.Lang),
		Cache:    cache,
		Workers:  workers,
		Shards:   shards,
		Sessions: b.Reps,
	}
	reg := obs.NewRegistry()
	b.Metrics = reg
	b.Parallel = workers
	b.Shards = shards
	if cache == "warm" {
		store, err := solver.OpenPersistentStore(warmFile)
		if err != nil {
			return c, err
		}
		defer store.Close()
		b.Persist = store
	}
	start := time.Now()
	experiments.RunRepeated(p, cfg, b)
	c.WallNs = int64(time.Since(start))
	if shards > 0 {
		// Cell sessions count their pre-dedup tests under chef.tests; the
		// cross-range deduplicated total is the comparable one.
		c.Tests = reg.Counter(obs.MChefTestsMerged).Value()
		c.VirtMakespan = reg.Counter(obs.MShardVirtMakespan).Value()
	} else {
		c.Tests = reg.Counter(obs.MChefTests).Value()
	}
	c.Spans = reg.SpanAggregates()
	for _, sp := range c.Spans {
		if sp.Layer == obs.SpanChefSession {
			c.VirtTime = sp.VirtTotal
		}
	}
	return c, nil
}

// printShardScaling reports the scaling payoff of sharding: the ratio of
// virtual throughput (VirtTime / VirtMakespan, virtual time explored per
// unit of the epoch schedule's critical path) between the 4-shard and
// 1-shard warm cells of one package. The makespan is the deterministic
// analogue of parallel wall time — at 1 shard it equals VirtTime, at 4 it
// is the per-epoch max worker load summed — so the ratio measures how well
// the range partition balances, independent of host core count. The
// deterministic result columns of those cells are identical by
// construction; only the makespan varies with the worker count.
func printShardScaling(pkg string, configs []benchfmt.Config) {
	var s1, s4 *benchfmt.Config
	for i := range configs {
		c := &configs[i]
		if c.Package != pkg || c.Shards == 0 {
			continue
		}
		switch c.Shards {
		case 1:
			s1 = c
		case 4:
			s4 = c
		}
	}
	if s1 == nil || s4 == nil {
		return
	}
	if s1.VirtMakespan <= 0 || s4.VirtMakespan <= 0 {
		return
	}
	t1 := float64(s1.VirtTime) / float64(s1.VirtMakespan)
	t4 := float64(s4.VirtTime) / float64(s4.VirtMakespan)
	fmt.Printf("%-32s 4-shard virtual throughput %.2fx the 1-shard baseline\n",
		pkg+" shard scaling", t4/t1)
}
