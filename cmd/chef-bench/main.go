// Command chef-bench runs the fixed benchmark matrix behind the repo's
// continuous benchmark trajectory and writes one schema-versioned JSON point
// (BENCH_<pr>.json, see internal/benchfmt). The matrix is deliberately
// small and fully deterministic: both interpreters, cold versus warm
// persistent cache, serial versus parallel workers, all at seed 42. The
// deterministic columns (tests, virtual time, span virtual aggregates) make
// drift between two trajectory points attributable to code changes; the
// wall-clock columns record what the host actually paid.
//
// Usage:
//
//	chef-bench -out BENCH_7.json
//	chef-bench -micro -out /tmp/bench.json   # 1-config smoke matrix for CI
//	chef-bench -validate BENCH_7.json        # schema + determinism check
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"chef/internal/benchfmt"
	"chef/internal/chef"
	"chef/internal/experiments"
	"chef/internal/minilua"
	"chef/internal/minipy"
	"chef/internal/obs"
	"chef/internal/packages"
	"chef/internal/solver"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		seed     = flag.Int64("seed", 42, "base session seed")
		budget   = flag.Int64("budget", 600_000, "virtual-time budget per session")
		stepCap  = flag.Int64("steplimit", 30_000, "per-run hang threshold")
		reps     = flag.Int("reps", 2, "sessions (distinct seeds) per configuration")
		out      = flag.String("out", "BENCH_7.json", "output file")
		bench    = flag.String("bench", "fixed-matrix", "matrix name recorded in the file")
		micro    = flag.Bool("micro", false, "run the 1-config smoke matrix (CI): simplejson, cold+warm, serial, 1 rep, reduced budget")
		validate = flag.String("validate", "", "validate an existing BENCH file and exit")
	)
	flag.Parse()

	if *validate != "" {
		data, err := os.ReadFile(*validate)
		if err != nil {
			fmt.Fprintf(os.Stderr, "chef-bench: %v\n", err)
			return 1
		}
		f, err := benchfmt.Parse(data)
		if err != nil {
			fmt.Fprintf(os.Stderr, "chef-bench: %s: %v\n", *validate, err)
			return 1
		}
		fmt.Printf("chef-bench: %s ok (%s, %d configs, seed %d, %s)\n",
			*validate, f.Schema, len(f.Configs), f.Seed, f.GoVersion)
		return 0
	}

	pkgNames := []string{"simplejson", "JSON"}
	caches := []string{"cold", "warm"}
	workerCounts := []int{1, 4}
	if *micro {
		pkgNames = []string{"simplejson"}
		workerCounts = []int{1}
		*reps = 1
		*bench = "micro"
		if *budget > 200_000 {
			*budget = 200_000
		}
	}

	cfg := experiments.Configuration{
		Name:     "cupa+opt",
		Strategy: chef.StrategyCUPAPath,
		PyCfg:    minipy.Optimized,
		LuaCfg:   minilua.Optimized,
	}
	file := benchfmt.File{
		Schema:    benchfmt.SchemaVersion,
		Bench:     *bench,
		Seed:      *seed,
		Budget:    *budget,
		StepLimit: *stepCap,
		Reps:      *reps,
		GoVersion: runtime.Version(),
	}

	tmp, err := os.MkdirTemp("", "chef-bench-")
	if err != nil {
		fmt.Fprintf(os.Stderr, "chef-bench: %v\n", err)
		return 1
	}
	defer os.RemoveAll(tmp)

	base := experiments.Budgets{
		Time: *budget, StepLimit: *stepCap, Reps: *reps, Seed: *seed,
		CacheMode: solver.CacheExact, Spans: true,
	}
	for _, name := range pkgNames {
		p, ok := packages.ByName(name)
		if !ok {
			fmt.Fprintf(os.Stderr, "chef-bench: unknown package %q\n", name)
			return 1
		}
		// Warm cells share one store per package, populated by an identical
		// unmeasured pass: its read side is then fixed, so the measured warm
		// run must reproduce the cold run's tests and virtual time exactly.
		warmFile := filepath.Join(tmp, name+".ndjson")
		if err := prewarm(p, cfg, base, warmFile); err != nil {
			fmt.Fprintf(os.Stderr, "chef-bench: prewarm %s: %v\n", name, err)
			return 1
		}
		for _, cache := range caches {
			for _, workers := range workerCounts {
				c, err := runCell(p, cfg, base, cache, workers, warmFile)
				if err != nil {
					fmt.Fprintf(os.Stderr, "chef-bench: %s: %v\n", c.Name, err)
					return 1
				}
				fmt.Printf("%-32s tests=%-5d virt=%-10d wall=%s\n",
					c.Name, c.Tests, c.VirtTime, time.Duration(c.WallNs).Round(time.Millisecond))
				file.Configs = append(file.Configs, c)
			}
		}
	}

	if err := file.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "chef-bench: result failed validation: %v\n", err)
		return 1
	}
	data, err := benchfmt.Marshal(&file)
	if err != nil {
		fmt.Fprintf(os.Stderr, "chef-bench: %v\n", err)
		return 1
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "chef-bench: %v\n", err)
		return 1
	}
	fmt.Printf("chef-bench: wrote %d configs to %s\n", len(file.Configs), *out)
	return 0
}

// prewarm populates path's persistent store with the queries of an
// unmeasured pass over the same matrix cell parameters.
func prewarm(p *packages.Package, cfg experiments.Configuration, b experiments.Budgets, path string) error {
	store, err := solver.OpenPersistentStore(path)
	if err != nil {
		return err
	}
	b.Persist = store
	b.Parallel = 1
	b.Spans = false
	experiments.RunRepeated(p, cfg, b)
	return store.Close()
}

// runCell measures one matrix cell: Reps sessions of p under cfg, totals
// read from a cell-private metrics registry (sessions merge their child
// registries into it, so totals are schedule-independent).
func runCell(p *packages.Package, cfg experiments.Configuration, b experiments.Budgets,
	cache string, workers int, warmFile string) (benchfmt.Config, error) {
	c := benchfmt.Config{
		Name:     fmt.Sprintf("%s/%s/w%d", p.Name, cache, workers),
		Package:  p.Name,
		Language: string(p.Lang),
		Cache:    cache,
		Workers:  workers,
		Sessions: b.Reps,
	}
	reg := obs.NewRegistry()
	b.Metrics = reg
	b.Parallel = workers
	if cache == "warm" {
		store, err := solver.OpenPersistentStore(warmFile)
		if err != nil {
			return c, err
		}
		defer store.Close()
		b.Persist = store
	}
	start := time.Now()
	experiments.RunRepeated(p, cfg, b)
	c.WallNs = int64(time.Since(start))
	c.Tests = reg.Counter(obs.MChefTests).Value()
	c.Spans = reg.SpanAggregates()
	for _, sp := range c.Spans {
		if sp.Layer == obs.SpanChefSession {
			c.VirtTime = sp.VirtTotal
		}
	}
	return c, nil
}
