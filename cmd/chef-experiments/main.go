// Command chef-experiments regenerates the paper's tables and figures
// (Tables 2-4, Figures 8-12) plus the §6.6 reference-implementation
// cross-check, printing each as a text table.
//
// Usage:
//
//	chef-experiments -experiment all
//	chef-experiments -experiment fig8 -budget 3000000 -reps 3
package main

import (
	chefPkg "chef/internal/chef"
	"flag"
	"fmt"
	"os"
	"strings"

	"chef/internal/dedicated"
	"chef/internal/experiments"
	"chef/internal/faults"
	"chef/internal/minipy"
	"chef/internal/obs"
	"chef/internal/obscli"
	"chef/internal/packages"
	"chef/internal/solver"
	"chef/internal/symexpr"
)

func main() {
	var (
		which    = flag.String("experiment", "all", "all | table2 | table3 | table4 | fig8 | fig9 | fig10 | fig11 | fig12 | nicebug | portfolio | crosscheck")
		budget   = flag.Int64("budget", 3_000_000, "virtual-time budget per session")
		stepCap  = flag.Int64("steplimit", 60_000, "per-run hang threshold")
		reps     = flag.Int("reps", 3, "repetitions per data point")
		seed     = flag.Int64("seed", 1, "base seed")
		frames   = flag.Int("frames", 4, "max symbolic frames for fig12")
		parallel = flag.Int("parallel", 0, "worker goroutines for the session grid (0 = GOMAXPROCS, 1 = serial); output is identical for every value")
		shards   = flag.Int("shards", 0, "sharded exploration per session cell: split the path space across signature-subtree ranges driven by up to N epoch workers (0 = plain sessions; output is identical for every N >= 1)")
		shared   = flag.Bool("sharedcache", false, "share one counterexample cache across all sessions (throughput knob; models may then depend on scheduling)")
		cmode    = flag.String("cachemode", "exact", "counterexample cache lookup layers: exact | subsume")
		smode    = flag.String("solvermode", "oneshot", "decision procedure behind the cache layers: oneshot | incremental | bdd")
		cfile    = flag.String("cachefile", "", "persistent counterexample cache: load solved queries from this file at startup, append new ones")
		stats    = flag.Bool("stats", false, "print harness statistics (sessions, solver queries, cache hits/misses) after each experiment")
		fspec    = flag.String("faults", "", "deterministic fault-injection plan, e.g. 'seed=7;solver.unknown:p=0.05;worker.stall:session=2' (see docs/ROBUSTNESS.md)")
	)
	var obsFlags obscli.Flags
	obsFlags.Register(flag.CommandLine)
	flag.Parse()
	if err := obsFlags.Start("chef-experiments"); err != nil {
		fmt.Fprintf(os.Stderr, "chef-experiments: %v\n", err)
		os.Exit(1)
	}
	b := experiments.Budgets{
		Time: *budget, StepLimit: *stepCap, Reps: *reps, Seed: *seed, Parallel: *parallel,
		Shards:  *shards,
		Metrics: obsFlags.Registry(), Tracer: obsFlags.Tracer(), Spans: obsFlags.SpansEnabled(),
	}
	if *shared {
		b.Cache = solver.NewQueryCache(0)
	}
	mode, ok := solver.ParseCacheMode(*cmode)
	if !ok {
		fmt.Fprintf(os.Stderr, "chef-experiments: unknown -cachemode %q (want exact or subsume)\n", *cmode)
		os.Exit(1)
	}
	b.CacheMode = mode
	solverMode, ok := solver.ParseSolverMode(*smode)
	if !ok {
		fmt.Fprintf(os.Stderr, "chef-experiments: unknown -solvermode %q (want oneshot, incremental or bdd)\n", *smode)
		os.Exit(1)
	}
	b.SolverMode = solverMode
	plan, err := faults.Parse(*fspec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "chef-experiments: -faults: %v\n", err)
		os.Exit(1)
	}
	b.Faults = plan
	if *cfile != "" {
		persist, err := solver.OpenPersistentStore(*cfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "chef-experiments: -cachefile: %v\n", err)
			os.Exit(1)
		}
		if cerr := persist.Corruption(); cerr != nil {
			fmt.Fprintf(os.Stderr, "chef-experiments: -cachefile: %v; continuing with the %d valid entries (appends disabled)\n",
				cerr, persist.Loaded())
		}
		b.Persist = persist
		if plan != nil {
			pin := plan.Injector("persist")
			pin.Instrument(obsFlags.Registry())
			persist.SetFaults(pin)
		}
	}
	printStats := func() {
		if !*stats {
			return
		}
		hs := experiments.HarnessSnapshot()
		fmt.Printf("[harness] workers=%d sessions=%d solver-queries=%d cache-hits=%d (exact=%d subsume-sat=%d subsume-unsat=%d persist=%d) cache-misses=%d\n",
			b.Workers(), hs.Sessions, hs.SolverQueries, hs.CacheHits,
			hs.Solver.CacheHitsExact, hs.Solver.CacheHitsSubsumeSat,
			hs.Solver.CacheHitsSubsumeUnsat, hs.Solver.CacheHitsPersist, hs.CacheMisses)
		if b.Cache != nil {
			cs := b.Cache.Stats()
			fmt.Printf("[shared-cache] queries=%d hits=%d misses=%d stores=%d evictions=%d entries=%d\n",
				cs.Queries, cs.Hits, cs.Misses, cs.Stores, cs.Evictions, cs.Entries)
		}
		experiments.ResetHarnessStats()
	}

	run := map[string]func(){
		"table2":    func() { fmt.Println(experiments.RenderTable2(experiments.Table2())) },
		"table3":    func() { fmt.Println(experiments.RenderTable3(experiments.Table3(b))) },
		"table4":    func() { fmt.Println(experiments.RenderTable4(experiments.Table4())) },
		"fig8":      func() { fmt.Println(experiments.RenderFig8(experiments.Fig8(b))) },
		"fig9":      func() { fmt.Println(experiments.RenderFig9(experiments.Fig9(b))) },
		"fig10":     func() { fmt.Println(experiments.RenderFig10(experiments.Fig10(b))) },
		"fig11":     func() { fmt.Println(experiments.RenderFig11(experiments.Fig11(b))) },
		"fig12":     func() { fmt.Println(experiments.RenderFig12(experiments.Fig12(*frames, b))) },
		"nicebug":   func() { nicebug() },
		"portfolio": func() { portfolio(b) },
		"crosscheck": func() {
			r, err := experiments.CrossCheck(2, 2, false, b)
			if err != nil {
				fmt.Fprintf(os.Stderr, "crosscheck: %v\n", err)
				os.Exit(1)
			}
			fmt.Println(experiments.RenderCrossCheck("dedicated engine vs CHEF HL paths (MAC controller, 2 frames)", r))
		},
	}
	order := []string{"table2", "table3", "table4", "fig8", "fig9", "fig10", "fig11", "fig12", "nicebug", "portfolio", "crosscheck"}

	finishObs := func() {
		if b.Cache != nil {
			cs := b.Cache.Stats()
			obsFlags.SetCacheGauges(cs.Entries, cs.Evictions)
		}
		if b.Persist != nil {
			// Close first so the retry/loss counters are final when copied
			// into the metrics dump; a close failure means appended entries
			// were lost — exit nonzero after flushing the sinks.
			cerr := b.Persist.Close()
			obsFlags.SetPersistStats(b.Persist.Stats())
			if cerr != nil {
				obsFlags.Finish(os.Stdout)
				fmt.Fprintf(os.Stderr, "chef-experiments: -cachefile: %v\n", cerr)
				os.Exit(1)
			}
		}
		if err := obsFlags.Finish(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "chef-experiments: %v\n", err)
			os.Exit(1)
		}
	}

	name := strings.ToLower(*which)
	if name == "all" {
		for _, k := range order {
			fmt.Printf("==== %s ====\n", k)
			run[k]()
			printStats()
		}
		finishObs()
		return
	}
	f, ok := run[name]
	if !ok {
		fmt.Fprintf(os.Stderr, "chef-experiments: unknown experiment %q\n", *which)
		os.Exit(1)
	}
	f()
	printStats()
	finishObs()
}

// nicebug reproduces the §6.6 reference-implementation experiment: the
// dedicated engine with the historical "if not <expr>" bug produces
// redundant tests and misses a feasible path, which the CHEF-derived engine
// exposes.
func nicebug() {
	src := `
def f(x):
    if not x == 5:
        return 0
    return 1
`
	prog := minipy.MustCompile(src)
	x := dedicated.IntV{E: symexpr.SExt(symexpr.NewVar(symexpr.Var{Buf: "x", W: symexpr.W32}), symexpr.W64)}

	report := func(label string, bug bool) int {
		e := dedicated.New(prog, dedicated.Options{BugCompat: bug})
		if err := e.Explore("f", []dedicated.Value{x}); err != nil {
			fmt.Fprintf(os.Stderr, "nicebug: %v\n", err)
			os.Exit(1)
		}
		behaviors := map[bool]bool{}
		for _, tc := range e.Tests() {
			behaviors[int32(tc.Input[symexpr.Var{Buf: "x", W: symexpr.W32}]) == 5] = true
		}
		fmt.Printf("%-28s %d tests covering %d distinct behaviors\n", label, len(e.Tests()), len(behaviors))
		return len(behaviors)
	}
	fmt.Println("NICE 'if not <expr>' bug cross-check (target: f(x) = [x != 5])")
	good := report("dedicated engine (fixed):", false)
	bad := report("dedicated engine (buggy):", true)
	if bad < good {
		fmt.Println("=> the buggy engine generates redundant test cases and misses a feasible path,")
		fmt.Println("   detected by tracking its tests along the CHEF-generated high-level paths.")
	}
}

// portfolio runs the §6.5 extension the paper proposes for large packages:
// a portfolio of interpreter builds, each exploring under a share of the
// budget, with high-level paths merged across builds.
func portfolio(b experiments.Budgets) {
	p, _ := packages.ByName("xlrd")
	var members []chefPortfolioMember
	names := minipy.OptLevelNames()
	for i, lvl := range minipy.OptLevels() {
		members = append(members, chefPortfolioMember{names[i], p.PyTest(lvl).Program()})
	}
	var ms []chefPkg.PortfolioMember
	for _, m := range members {
		ms = append(ms, chefPkg.PortfolioMember{Name: m.name, Prog: m.prog})
	}
	opts := chefPkg.Options{
		Strategy: chefPkg.StrategyCUPAPath, Seed: b.Seed, StepLimit: b.StepLimit, Parallel: b.Parallel,
		Metrics: b.Metrics, Tracer: b.Tracer, Faults: b.Faults,
	}
	if b.Spans {
		// Non-nil Spans asks RunPortfolio for per-member profilers (members
		// run concurrently; profilers are single-goroutine).
		opts.Spans = obs.NewSpanProfiler(b.Metrics, b.Tracer)
	}
	res := chefPkg.RunPortfolio(ms, opts, b.Time)
	fmt.Printf("Portfolio over %d interpreter builds of xlrd (total budget %d):\n", len(ms), b.Time)
	for i, m := range ms {
		fmt.Printf("  %-30s %5d paths, %4d new to the portfolio\n", m.Name, res.PerBuild[i], res.NewPerBuild[i])
	}
	fmt.Printf("  merged distinct high-level paths: %d\n", len(res.Tests))
}

type chefPortfolioMember struct {
	name string
	prog chefPkg.TestProgram
}
