// Command chef runs a symbolic test against one of the evaluation packages
// and emits the generated high-level test cases, playing the role of the
// CHEF invocation in the paper's workflow (Figure 4: symbolic test in, test
// cases out).
//
// Usage:
//
//	chef -package simplejson -strategy cupa-path -budget 3000000 -out tests.ndjson
//
// Observability: -trace writes structured JSONL exploration events (consumed
// by cmd/chef-trace), -metrics prints a counter/histogram dump at exit,
// -httpobs serves expvar+pprof. See docs/OBSERVABILITY.md.
package main

import (
	"flag"
	"fmt"
	"os"

	"chef/internal/chef"
	"chef/internal/faults"
	"chef/internal/minilua"
	"chef/internal/minipy"
	"chef/internal/obscli"
	"chef/internal/packages"
	"chef/internal/solver"
	"chef/internal/symtest"
)

func main() {
	var (
		pkgName  = flag.String("package", "simplejson", "target package (see -list)")
		list     = flag.Bool("list", false, "list available packages")
		strategy = flag.String("strategy", "cupa-path", "state selection: random | cupa-path | cupa-coverage | dfs | bfs")
		budget   = flag.Int64("budget", 3_000_000, "virtual-time exploration budget")
		stepCap  = flag.Int64("steplimit", 60_000, "per-run hang threshold (virtual steps)")
		seed     = flag.Int64("seed", 1, "random seed")
		vanilla  = flag.Bool("vanilla", false, "use the unoptimized interpreter build")
		out      = flag.String("out", "", "write generated tests as NDJSON to this file")
		cmode    = flag.String("cachemode", "exact", "counterexample cache lookup layers: exact | subsume")
		cfile    = flag.String("cachefile", "", "persistent counterexample cache: load solved queries from this file at startup, append new ones")
		fspec    = flag.String("faults", "", "deterministic fault-injection plan, e.g. 'seed=7;solver.unknown:p=0.05;persist.write:err@n=3' (see docs/ROBUSTNESS.md)")
	)
	var obsFlags obscli.Flags
	obsFlags.Register(flag.CommandLine)
	flag.Parse()

	if *list {
		for _, p := range packages.All() {
			fmt.Printf("%-14s %-7s %5d LOC  %s\n", p.Name, p.Lang, p.LOC(), p.Desc)
		}
		return
	}
	p, ok := packages.ByName(*pkgName)
	if !ok {
		fmt.Fprintf(os.Stderr, "chef: unknown package %q (try -list)\n", *pkgName)
		os.Exit(1)
	}
	strat, ok := parseStrategy(*strategy)
	if !ok {
		fmt.Fprintf(os.Stderr, "chef: unknown strategy %q\n", *strategy)
		os.Exit(1)
	}
	mode, ok := solver.ParseCacheMode(*cmode)
	if !ok {
		fmt.Fprintf(os.Stderr, "chef: unknown -cachemode %q (want exact or subsume)\n", *cmode)
		os.Exit(1)
	}
	plan, err := faults.Parse(*fspec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "chef: -faults: %v\n", err)
		os.Exit(1)
	}
	var persist *solver.PersistentStore
	if *cfile != "" {
		var err error
		persist, err = solver.OpenPersistentStore(*cfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "chef: -cachefile: %v\n", err)
			os.Exit(1)
		}
		if cerr := persist.Corruption(); cerr != nil {
			fmt.Fprintf(os.Stderr, "chef: -cachefile: %v; continuing with the %d valid entries (appends disabled)\n",
				cerr, persist.Loaded())
		}
	}
	if err := obsFlags.Start("chef"); err != nil {
		fmt.Fprintf(os.Stderr, "chef: %v\n", err)
		os.Exit(1)
	}
	var persistInj *faults.Injector
	if persist != nil && plan != nil {
		persistInj = plan.Injector("persist")
		persistInj.Instrument(obsFlags.Registry())
		persist.SetFaults(persistInj)
	}

	opts := chef.Options{
		Strategy:      strat,
		Seed:          *seed,
		StepLimit:     *stepCap,
		SolverOptions: solver.Options{Mode: mode, Persist: persist},
		Metrics:       obsFlags.Registry(),
		Tracer:        obsFlags.Tracer(),
		Name:          fmt.Sprintf("%s/%s/%d", *pkgName, *strategy, *seed),
		Faults:        plan,
	}
	var prog chef.TestProgram
	pyCfg, luaCfg := minipy.Optimized, minilua.Optimized
	if *vanilla {
		pyCfg, luaCfg = minipy.Vanilla, minilua.Vanilla
	}
	if p.Lang == packages.Python {
		prog = p.PyTest(pyCfg).Program()
	} else {
		prog = p.LuaTest(luaCfg).Program()
	}

	session := chef.NewSession(prog, opts)
	tests := session.Run(*budget)
	st := session.Engine().Stats()
	fmt.Printf("package %s: %d high-level tests from %d low-level paths (%d runs, %d solver-unsat states, clock %d)\n",
		p.Name, len(tests), st.LLPaths, st.Runs, st.UnsatStates, session.Engine().Clock())
	if plan != nil {
		line := fmt.Sprintf("faults: %d injected; states requeued %d, abandoned %d",
			session.FaultsInjected()+persistInj.Injected(), st.RequeuedStates, st.AbandonedStates)
		if session.Stalled() {
			line += "; session stalled"
		}
		if persist != nil {
			line += fmt.Sprintf("; persist retries %d, lost %d", persist.Retries(), persist.Lost())
		}
		fmt.Println(line)
	}

	serialized := make([]symtest.SerializedTest, 0, len(tests))
	for _, tc := range tests {
		serialized = append(serialized, symtest.SerializedTest{
			Package: p.Name,
			Result:  tc.Result,
			Status:  tc.Status.String(),
			Input:   symtest.EncodeInput(tc.Input),
		})
	}
	symtest.SortTests(serialized)
	for _, tc := range serialized {
		fmt.Printf("  %-28s %s\n", tc.Result, renderInput(p, tc))
	}
	if *out != "" {
		data, err := symtest.MarshalTests(serialized)
		if err != nil {
			fmt.Fprintf(os.Stderr, "chef: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "chef: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d tests to %s\n", len(serialized), *out)
	}

	cs := session.Engine().Solver().Cache().Stats()
	obsFlags.SetCacheGauges(cs.Entries, cs.Evictions)
	if persist != nil {
		// Close first: it drains (or gives up on) pending writes, so the
		// retry/loss counters are final when copied into the metrics dump.
		// A close failure means appended entries were lost — exit nonzero.
		cerr := persist.Close()
		obsFlags.SetPersistStats(int64(persist.Loaded()), persist.Appended(),
			persist.Retries(), persist.WriteErrors(), persist.Lost())
		if cerr != nil {
			obsFlags.Finish(os.Stdout)
			fmt.Fprintf(os.Stderr, "chef: -cachefile: %v\n", cerr)
			os.Exit(1)
		}
	}
	if err := obsFlags.Finish(os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "chef: %v\n", err)
		os.Exit(1)
	}
}

func parseStrategy(s string) (chef.StrategyKind, bool) {
	switch s {
	case "random":
		return chef.StrategyRandom, true
	case "cupa-path":
		return chef.StrategyCUPAPath, true
	case "cupa-coverage":
		return chef.StrategyCUPACoverage, true
	case "dfs":
		return chef.StrategyDFS, true
	case "bfs":
		return chef.StrategyBFS, true
	}
	return 0, false
}

func renderInput(p *packages.Package, tc symtest.SerializedTest) string {
	in, err := symtest.DecodeInput(tc.Input)
	if err != nil {
		return "?"
	}
	return symtest.InputString(in, p.Inputs)
}
