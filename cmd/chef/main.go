// Command chef runs a symbolic test against one of the evaluation packages
// and emits the generated high-level test cases, playing the role of the
// CHEF invocation in the paper's workflow (Figure 4: symbolic test in, test
// cases out).
//
// The CLI is a thin client of the job API in internal/serve: it builds the
// same serve.JobSpec a POST /v1/jobs body carries and runs it through the
// same serve.Execute entry point chef-serve's workers use, which is what
// makes a served job byte-identical to a CLI run with the same spec and
// seed — by construction, not by parallel maintenance.
//
// Usage:
//
//	chef -package simplejson -strategy cupa-path -budget 3000000 -out tests.ndjson
//
// Observability: -trace writes structured JSONL exploration events (consumed
// by cmd/chef-trace), -metrics prints a counter/histogram dump at exit,
// -httpobs serves expvar+pprof. See docs/OBSERVABILITY.md.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"chef/internal/chef"
	"chef/internal/faults"
	"chef/internal/obs"
	"chef/internal/obscli"
	"chef/internal/packages"
	"chef/internal/serve"
	"chef/internal/solver"
	"chef/internal/symtest"
)

func main() {
	var (
		pkgName  = flag.String("package", "simplejson", "target package (see -list)")
		list     = flag.Bool("list", false, "list available packages")
		strategy = flag.String("strategy", "cupa-path", "state selection: random | cupa-path | cupa-coverage | dfs | bfs")
		budget   = flag.Int64("budget", 3_000_000, "virtual-time exploration budget")
		stepCap  = flag.Int64("steplimit", 60_000, "per-run hang threshold (virtual steps)")
		seed     = flag.Int64("seed", 1, "random seed")
		vanilla  = flag.Bool("vanilla", false, "use the unoptimized interpreter build")
		out      = flag.String("out", "", "write generated tests as NDJSON to this file")
		cmode    = flag.String("cachemode", "exact", "counterexample cache lookup layers: exact | subsume")
		smode    = flag.String("solvermode", "oneshot", "decision procedure behind the cache layers: oneshot (fresh CNF per query) | incremental (assumption-scoped context with learned-clause retention) | bdd (boolean-skeleton diagram with CDCL fallback)")
		shards   = flag.Int("shards", 0, "sharded exploration: split the path space across signature-subtree ranges driven by up to N epoch workers (0 = plain session; results are identical for every N >= 1)")
		cfile    = flag.String("cachefile", "", "persistent counterexample cache: load solved queries from this file at startup, append new ones")
		fspec    = flag.String("faults", "", "deterministic fault-injection plan, e.g. 'seed=7;solver.unknown:p=0.05;persist.write:err@n=3' (see docs/ROBUSTNESS.md)")
	)
	var obsFlags obscli.Flags
	obsFlags.Register(flag.CommandLine)
	flag.Parse()

	if *list {
		for _, p := range packages.All() {
			fmt.Printf("%-14s %-7s %5d LOC  %s\n", p.Name, p.Lang, p.LOC(), p.Desc)
		}
		return
	}
	p, ok := packages.ByName(*pkgName)
	if !ok {
		fmt.Fprintf(os.Stderr, "chef: unknown package %q (try -list)\n", *pkgName)
		os.Exit(1)
	}
	spec := serve.JobSpec{
		Package:    *pkgName,
		Strategy:   *strategy,
		Budget:     *budget,
		StepLimit:  *stepCap,
		Seed:       *seed,
		Vanilla:    *vanilla,
		CacheMode:  *cmode,
		SolverMode: *smode,
		Shards:     *shards,
	}
	if err := spec.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "chef: %v\n", err)
		os.Exit(1)
	}
	plan, err := faults.Parse(*fspec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "chef: -faults: %v\n", err)
		os.Exit(1)
	}
	var persist *solver.PersistentStore
	if *cfile != "" {
		var err error
		persist, err = solver.OpenPersistentStore(*cfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "chef: -cachefile: %v\n", err)
			os.Exit(1)
		}
		if cerr := persist.Corruption(); cerr != nil {
			fmt.Fprintf(os.Stderr, "chef: -cachefile: %v; continuing with the %d valid entries (appends disabled)\n",
				cerr, persist.Loaded())
		}
	}
	if err := obsFlags.Start("chef"); err != nil {
		fmt.Fprintf(os.Stderr, "chef: %v\n", err)
		os.Exit(1)
	}
	var persistInj *faults.Injector
	if persist != nil && plan != nil {
		persistInj = plan.Injector("persist")
		persistInj.Instrument(obsFlags.Registry())
		persist.SetFaults(persistInj)
	}

	eo := serve.ExecOptions{
		Metrics: obsFlags.Registry(),
		Tracer:  obsFlags.Tracer(),
		Spans:   obsFlags.SpanProfiler(),
		Faults:  plan,
		Name:    fmt.Sprintf("%s/%s/%d", *pkgName, *strategy, *seed),
	}
	if persist != nil {
		eo.Persist = persist
		if obsFlags.SpansEnabled() {
			// The flusher goroutine gets its own profiler (profilers are
			// single-goroutine); its spans land in the same registry/trace.
			persist.Attach(solver.Instruments{Spans: obs.NewSpanProfiler(obsFlags.Registry(), obsFlags.Tracer())})
		}
	}
	res, err := serve.Execute(context.Background(), spec, eo)
	if err != nil {
		fmt.Fprintf(os.Stderr, "chef: %v\n", err)
		os.Exit(1)
	}
	sum := res.Summary
	fmt.Printf("package %s: %d high-level tests from %d low-level paths (%d runs, %d solver-unsat states, clock %d)\n",
		p.Name, len(res.Tests), sum.LLPaths, sum.Runs, sum.UnsatStates, sum.VirtTime)
	if plan != nil {
		line := fmt.Sprintf("faults: %d injected; states requeued %d, abandoned %d",
			sum.FaultsInjected+persistInj.Injected(), sum.RequeuedStates, sum.AbandonedStates)
		if res.Stalled {
			line += "; session stalled"
		}
		if persist != nil {
			line += fmt.Sprintf("; persist retries %d, lost %d", persist.Retries(), persist.Lost())
		}
		fmt.Println(line)
	}

	for _, tc := range res.Tests {
		fmt.Printf("  %-28s %s\n", tc.Result, renderInput(p, tc))
	}
	if *out != "" {
		data, err := symtest.MarshalTests(res.Tests)
		if err != nil {
			fmt.Fprintf(os.Stderr, "chef: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "chef: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d tests to %s\n", len(res.Tests), *out)
	}

	cs := res.CacheStats
	obsFlags.SetCacheGauges(cs.Entries, cs.Evictions)
	if persist != nil {
		// Close first: it drains (or gives up on) pending writes, so the
		// retry/loss counters are final when copied into the metrics dump.
		// A close failure means appended entries were lost — exit nonzero.
		cerr := persist.Close()
		obsFlags.SetPersistStats(persist.Stats())
		if cerr != nil {
			obsFlags.Finish(os.Stdout)
			fmt.Fprintf(os.Stderr, "chef: -cachefile: %v\n", cerr)
			os.Exit(1)
		}
	}
	if err := obsFlags.Finish(os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "chef: %v\n", err)
		os.Exit(1)
	}
}

// parseStrategy maps the flag value onto chef.StrategyKind (delegating to
// the shared parser in internal/serve).
func parseStrategy(s string) (chef.StrategyKind, bool) {
	return serve.ParseStrategy(s)
}

func renderInput(p *packages.Package, tc symtest.SerializedTest) string {
	in, err := symtest.DecodeInput(tc.Input)
	if err != nil {
		return "?"
	}
	return symtest.InputString(in, p.Inputs)
}
