package main

import (
	"testing"

	"chef/internal/chef"
	"chef/internal/packages"
	"chef/internal/symtest"
)

func TestParseStrategy(t *testing.T) {
	cases := map[string]chef.StrategyKind{
		"random":        chef.StrategyRandom,
		"cupa-path":     chef.StrategyCUPAPath,
		"cupa-coverage": chef.StrategyCUPACoverage,
		"dfs":           chef.StrategyDFS,
		"bfs":           chef.StrategyBFS,
	}
	for name, want := range cases {
		got, ok := parseStrategy(name)
		if !ok || got != want {
			t.Errorf("parseStrategy(%q) = %v, %v", name, got, ok)
		}
	}
	if _, ok := parseStrategy("nonsense"); ok {
		t.Error("unknown strategy accepted")
	}
}

func TestRenderInput(t *testing.T) {
	p, _ := packages.ByName("unicodecsv")
	tc := symtest.SerializedTest{
		Package: "unicodecsv",
		Input:   map[string]uint64{"line[0]:8": 'a', "line[1]:8": ',', "line[2]:8": 'b'},
	}
	got := renderInput(p, tc)
	if got != `line="a,b\x00\x00\x00"` {
		t.Errorf("renderInput = %q", got)
	}
	if renderInput(p, symtest.SerializedTest{Input: map[string]uint64{"bad": 1}}) != "?" {
		t.Error("bad input should render as ?")
	}
}
