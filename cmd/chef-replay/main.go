// Command chef-replay re-executes generated test cases on the vanilla
// interpreter (the paper's replay mode: confirm results on the host and
// measure line coverage).
//
// Usage:
//
//	chef-replay -in tests.ndjson
package main

import (
	"flag"
	"fmt"
	"os"

	"chef/internal/minilua"
	"chef/internal/minipy"
	"chef/internal/packages"
	"chef/internal/symtest"
)

func main() {
	var (
		in      = flag.String("in", "", "NDJSON test file written by cmd/chef")
		stepCap = flag.Int64("steplimit", 60_000, "per-run hang threshold")
	)
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "chef-replay: -in is required")
		os.Exit(1)
	}
	data, err := os.ReadFile(*in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "chef-replay: %v\n", err)
		os.Exit(1)
	}
	tests, err := symtest.UnmarshalTests(data)
	if err != nil {
		fmt.Fprintf(os.Stderr, "chef-replay: %v\n", err)
		os.Exit(1)
	}
	covered := map[int]bool{}
	confirmed, mismatched := 0, 0
	var pkgName string
	var coverable int
	for _, tc := range tests {
		p, ok := packages.ByName(tc.Package)
		if !ok {
			fmt.Fprintf(os.Stderr, "chef-replay: unknown package %q\n", tc.Package)
			os.Exit(1)
		}
		pkgName = p.Name
		coverable = p.CoverableLOC()
		input, err := symtest.DecodeInput(tc.Input)
		if err != nil {
			fmt.Fprintf(os.Stderr, "chef-replay: %v\n", err)
			os.Exit(1)
		}
		var rep symtest.ReplayResult
		if p.Lang == packages.Python {
			rep = p.PyTest(minipy.Vanilla).Replay(input, *stepCap)
		} else {
			rep = p.LuaTest(minilua.Vanilla).Replay(input, *stepCap)
		}
		for l := range rep.Lines {
			covered[l] = true
		}
		match := rep.Result == tc.Result
		// Hang statuses compare through the recorded engine status.
		if tc.Status == "hang" && rep.Result == "hang" {
			match = true
		}
		if match {
			confirmed++
		} else {
			mismatched++
			fmt.Printf("MISMATCH: recorded %q, replayed %q (%s)\n", tc.Result, rep.Result,
				symtest.InputString(input, p.Inputs))
		}
	}
	fmt.Printf("replayed %d tests for %s: %d confirmed, %d mismatched\n",
		len(tests), pkgName, confirmed, mismatched)
	if coverable > 0 {
		fmt.Printf("line coverage: %d/%d lines (%.1f%%)\n",
			len(covered), coverable, 100*float64(len(covered))/float64(coverable))
	}
	if mismatched > 0 {
		os.Exit(1)
	}
}
