// Command chef-replay re-executes generated test cases on the vanilla
// interpreter (the paper's replay mode: confirm results on the host and
// measure line coverage).
//
// Usage:
//
//	chef-replay -in tests.ndjson
//	chef-replay -in tests.ndjson -summary   # one-line JSON execution profile
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"chef/internal/minilua"
	"chef/internal/minipy"
	"chef/internal/packages"
	"chef/internal/symtest"
)

// summary is the -summary output: one JSON line aggregating the replay. A
// concrete replay never consults the constraint solver, so SolverQueries is
// always 0 — the field exists so replay lines and traced-exploration metrics
// share a schema.
type summary struct {
	Package       string `json:"package"`
	Tests         int    `json:"tests"`
	Confirmed     int    `json:"confirmed"`
	Mismatched    int    `json:"mismatched"`
	HLTraceLen    int64  `json:"hlpc_trace_len"`
	LLBranches    int64  `json:"ll_branches"`
	Steps         int64  `json:"steps"`
	SolverQueries int64  `json:"solver_queries"`
	CoveredLines  int    `json:"covered_lines"`
	Coverable     int    `json:"coverable_lines"`
}

// writeSummary renders the one-line JSON summary.
func writeSummary(w io.Writer, s summary) error {
	data, err := json.Marshal(s)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "%s\n", data)
	return err
}

func main() {
	var (
		in      = flag.String("in", "", "NDJSON test file written by cmd/chef")
		stepCap = flag.Int64("steplimit", 60_000, "per-run hang threshold")
		summ    = flag.Bool("summary", false, "print a one-line JSON summary (HLPC trace length, LL branches, coverage) instead of the text report")
	)
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "chef-replay: -in is required")
		os.Exit(1)
	}
	data, err := os.ReadFile(*in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "chef-replay: %v\n", err)
		os.Exit(1)
	}
	tests, err := symtest.UnmarshalTests(data)
	if err != nil {
		fmt.Fprintf(os.Stderr, "chef-replay: %v\n", err)
		os.Exit(1)
	}
	covered := map[int]bool{}
	confirmed, mismatched := 0, 0
	var pkgName string
	var coverable int
	var hlLen, llBranches, steps int64
	for _, tc := range tests {
		p, ok := packages.ByName(tc.Package)
		if !ok {
			fmt.Fprintf(os.Stderr, "chef-replay: unknown package %q\n", tc.Package)
			os.Exit(1)
		}
		pkgName = p.Name
		coverable = p.CoverableLOC()
		input, err := symtest.DecodeInput(tc.Input)
		if err != nil {
			fmt.Fprintf(os.Stderr, "chef-replay: %v\n", err)
			os.Exit(1)
		}
		var rep symtest.ReplayResult
		if p.Lang == packages.Python {
			rep = p.PyTest(minipy.Vanilla).Replay(input, *stepCap)
		} else {
			rep = p.LuaTest(minilua.Vanilla).Replay(input, *stepCap)
		}
		for l := range rep.Lines {
			covered[l] = true
		}
		hlLen += int64(rep.HLLen)
		llBranches += rep.LLBranches
		steps += rep.Steps
		match := rep.Result == tc.Result
		// Hang statuses compare through the recorded engine status.
		if tc.Status == "hang" && rep.Result == "hang" {
			match = true
		}
		if match {
			confirmed++
		} else {
			mismatched++
			// With -summary, stdout carries exactly one JSON line; diagnostics
			// go to stderr.
			w := os.Stdout
			if *summ {
				w = os.Stderr
			}
			fmt.Fprintf(w, "MISMATCH: recorded %q, replayed %q (%s)\n", tc.Result, rep.Result,
				symtest.InputString(input, p.Inputs))
		}
	}
	if *summ {
		err := writeSummary(os.Stdout, summary{
			Package: pkgName, Tests: len(tests), Confirmed: confirmed, Mismatched: mismatched,
			HLTraceLen: hlLen, LLBranches: llBranches, Steps: steps,
			CoveredLines: len(covered), Coverable: coverable,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "chef-replay: %v\n", err)
			os.Exit(1)
		}
	} else {
		fmt.Printf("replayed %d tests for %s: %d confirmed, %d mismatched\n",
			len(tests), pkgName, confirmed, mismatched)
		if coverable > 0 {
			fmt.Printf("line coverage: %d/%d lines (%.1f%%)\n",
				len(covered), coverable, 100*float64(len(covered))/float64(coverable))
		}
	}
	if mismatched > 0 {
		os.Exit(1)
	}
}
