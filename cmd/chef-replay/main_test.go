package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"chef/internal/minipy"
	"chef/internal/packages"
	"chef/internal/symexpr"
)

func TestWriteSummaryOneLine(t *testing.T) {
	var buf bytes.Buffer
	err := writeSummary(&buf, summary{
		Package: "simplejson", Tests: 3, Confirmed: 3,
		HLTraceLen: 120, LLBranches: 45, Steps: 900,
		CoveredLines: 10, Coverable: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Count(out, "\n") != 1 || !strings.HasSuffix(out, "\n") {
		t.Fatalf("summary is not exactly one line: %q", out)
	}
	var got map[string]any
	if err := json.Unmarshal([]byte(out), &got); err != nil {
		t.Fatalf("summary is not valid JSON: %v", err)
	}
	for _, key := range []string{"package", "tests", "hlpc_trace_len", "ll_branches", "solver_queries", "covered_lines"} {
		if _, ok := got[key]; !ok {
			t.Errorf("summary missing key %q: %s", key, out)
		}
	}
	if got["solver_queries"].(float64) != 0 {
		t.Errorf("concrete replay must report 0 solver queries, got %v", got["solver_queries"])
	}
}

// TestReplayProfileCounters checks the per-replay execution profile the
// summary aggregates: a concrete replay reports a non-empty HL trace, visited
// branch sites, and spent steps.
func TestReplayProfileCounters(t *testing.T) {
	p, ok := packages.ByName("simplejson")
	if !ok {
		t.Fatal("simplejson package missing")
	}
	rep := p.PyTest(minipy.Vanilla).Replay(symexpr.Assignment{}, 60_000)
	if rep.HLLen <= 0 {
		t.Errorf("HLLen = %d, want > 0", rep.HLLen)
	}
	if rep.LLBranches <= 0 {
		t.Errorf("LLBranches = %d, want > 0", rep.LLBranches)
	}
	if rep.Steps <= 0 {
		t.Errorf("Steps = %d, want > 0", rep.Steps)
	}
	if rep.HLLen < len(rep.Lines) {
		t.Errorf("HL trace (%d) shorter than covered line set (%d)", rep.HLLen, len(rep.Lines))
	}
}
