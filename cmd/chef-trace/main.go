// Command chef-trace analyzes JSONL exploration traces produced by
// cmd/chef -trace (and cmd/chef-experiments -trace). It renders the offline
// counterparts of the paper's exploration diagnostics:
//
//   - fork hot spots: the top-K low-level PCs by registered alternate states,
//     the interpreter-internals bias CUPA exists to correct (§3.2);
//   - the high-level path discovery timeline, the raw series behind Fig. 8;
//   - the solver latency histogram (virtual cost and wall clock per query)
//     with cache hit rates;
//   - per-session summaries.
//
// Usage:
//
//	chef -package simplejson -trace trace.jsonl && chef-trace -in trace.jsonl
//	chef-trace -in trace.jsonl -section forks -top 5
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"chef/internal/obs"
)

func main() {
	var (
		in      = flag.String("in", "-", "trace file to read (- for stdin)")
		topK    = flag.Int("top", 10, "number of entries in top-K tables")
		section = flag.String("section", "all", "all | forks | timeline | solver | sessions | profile")
		profile = flag.Bool("profile", false, "shorthand for -section profile: render the span time-attribution tree")
	)
	flag.Parse()
	if *profile {
		*section = "profile"
	}

	var r io.Reader = os.Stdin
	if *in != "-" && *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fmt.Fprintf(os.Stderr, "chef-trace: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		r = f
	}
	events, err := obs.ParseJSONL(r)
	if err != nil {
		fmt.Fprintf(os.Stderr, "chef-trace: parse: %v\n", err)
		os.Exit(1)
	}
	out, err := Render(events, *section, *topK)
	if err != nil {
		fmt.Fprintf(os.Stderr, "chef-trace: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(out)
}

// Render produces the requested report section(s) for a parsed trace.
func Render(events []obs.Event, section string, topK int) (string, error) {
	var b strings.Builder
	switch section {
	case "all":
		b.WriteString(renderForks(events, topK))
		b.WriteString(renderTimeline(events))
		b.WriteString(renderSolver(events))
		b.WriteString(renderProfile(events))
		b.WriteString(renderSessions(events))
	case "forks":
		b.WriteString(renderForks(events, topK))
	case "timeline":
		b.WriteString(renderTimeline(events))
	case "solver":
		b.WriteString(renderSolver(events))
	case "sessions":
		b.WriteString(renderSessions(events))
	case "profile":
		b.WriteString(renderProfile(events))
	default:
		return "", fmt.Errorf("unknown section %q", section)
	}
	return b.String(), nil
}

// forkSite aggregates ll-fork events at one low-level PC.
type forkSite struct {
	llpc      uint64
	forks     int64
	decisions map[string]int64
}

// renderForks prints the top-K fork hot spots by LLPC. These are the
// interpreter-internal branch sites (string routines, hash functions, type
// dispatch) whose fork explosion motivates CUPA.
func renderForks(events []obs.Event, topK int) string {
	sites := map[uint64]*forkSite{}
	var total int64
	for i := range events {
		ev := &events[i]
		if ev.Kind != obs.KindLLFork {
			continue
		}
		s := sites[ev.LLPC]
		if s == nil {
			s = &forkSite{llpc: ev.LLPC, decisions: map[string]int64{}}
			sites[ev.LLPC] = s
		}
		s.forks++
		s.decisions[ev.Decision]++
		total++
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== Fork hot spots (top %d LLPCs, %d forks at %d sites) ==\n", topK, total, len(sites))
	if total == 0 {
		b.WriteString("  no ll-fork events in trace\n\n")
		return b.String()
	}
	ordered := make([]*forkSite, 0, len(sites))
	for _, s := range sites {
		ordered = append(ordered, s)
	}
	sort.Slice(ordered, func(i, j int) bool {
		if ordered[i].forks != ordered[j].forks {
			return ordered[i].forks > ordered[j].forks
		}
		return ordered[i].llpc < ordered[j].llpc
	})
	if len(ordered) > topK {
		ordered = ordered[:topK]
	}
	fmt.Fprintf(&b, "  %-4s %-12s %8s %7s  %s\n", "rank", "llpc", "forks", "share", "decisions")
	for i, s := range ordered {
		fmt.Fprintf(&b, "  %-4d 0x%-10x %8d %6.1f%%  %s\n",
			i+1, s.llpc, s.forks, 100*float64(s.forks)/float64(total), decisionString(s.decisions))
	}
	b.WriteString("\n")
	return b.String()
}

func decisionString(m map[string]int64) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%d", k, m[k]))
	}
	return strings.Join(parts, " ")
}

// renderTimeline prints the high-level path discovery timeline: one line per
// testcase event in virtual-time order, with the cumulative distinct-path
// count — the raw series behind the paper's Fig. 8 curves.
func renderTimeline(events []obs.Event) string {
	var cases []obs.Event
	for i := range events {
		if events[i].Kind == obs.KindTestCase {
			cases = append(cases, events[i])
		}
	}
	sort.SliceStable(cases, func(i, j int) bool { return cases[i].T < cases[j].T })
	var b strings.Builder
	fmt.Fprintf(&b, "== HL path discovery timeline (%d test cases) ==\n", len(cases))
	if len(cases) == 0 {
		b.WriteString("  no testcase events in trace\n\n")
		return b.String()
	}
	fmt.Fprintf(&b, "  %-12s %-6s %-8s %-18s %-12s %s\n", "virt-time", "#", "hl-len", "sig", "status", "session")
	for i, ev := range cases {
		fmt.Fprintf(&b, "  %-12d %-6d %-8d %-18s %-12s %s\n", ev.T, i+1, ev.HLLen, ev.Sig, ev.Status, ev.Session)
	}
	b.WriteString("\n")
	return b.String()
}

// renderSolver prints aggregate solver behavior: result mix, cache hit rate,
// and latency histograms over both the virtual cost (propagations, what the
// engine's clock charges) and the wall clock (what the host actually paid).
func renderSolver(events []obs.Event) string {
	var queries, hits int64
	results := map[string]int64{}
	var virt, wall obs.Histogram
	for i := range events {
		ev := &events[i]
		if ev.Kind != obs.KindSolverQuery {
			continue
		}
		queries++
		if ev.CacheHit {
			hits++
		}
		results[ev.Result]++
		virt.Observe(ev.VirtCost)
		wall.Observe(ev.WallCost)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== Solver latency (%d queries) ==\n", queries)
	if queries == 0 {
		b.WriteString("  no solver-query events in trace\n\n")
		return b.String()
	}
	fmt.Fprintf(&b, "  results: %s\n", decisionString(results))
	fmt.Fprintf(&b, "  cache:   %d/%d hits (%.1f%%)\n", hits, queries, 100*float64(hits)/float64(queries))
	writeHist(&b, "virtual cost (propagations)", &virt)
	writeHist(&b, "wall clock (ns)", &wall)
	b.WriteString("\n")
	return b.String()
}

func writeHist(b *strings.Builder, label string, h *obs.Histogram) {
	mean := 0.0
	if h.Count() > 0 {
		mean = float64(h.Sum()) / float64(h.Count())
	}
	fmt.Fprintf(b, "  %s: count=%d mean=%.1f max=%d\n", label, h.Count(), mean, h.Max())
	for i := 0; i < obs.HistBuckets; i++ {
		n := h.Bucket(i)
		if n == 0 {
			continue
		}
		lo, hi := obs.BucketBounds(i)
		width := int(40 * n / h.Count())
		if width == 0 {
			width = 1
		}
		fmt.Fprintf(b, "    [%12d, %12d]  %-7d %s\n", lo, hi, n, strings.Repeat("#", width))
	}
}

// profEdge aggregates span events for one (parent layer, layer) edge of the
// attribution tree. Keying edges rather than layers keeps a layer that shows
// up under two different parents (e.g. solver.check under both engine.run and
// chef.session) attributed to each separately.
type profEdge struct {
	parent, layer       string
	count               int64
	virtTotal, virtSelf int64
	wallTotal, wallSelf int64
}

// renderProfile prints the hierarchical time-attribution tree built from span
// events (cmd/chef -spans): per layer, the total and self share of virtual
// time (the deterministic cost model: interpreter steps + solver
// propagations) and of wall time (observational). Percentages are relative to
// the summed root-span virtual total, so at every level a node's self%% plus
// its children's total%% add up to the node's own total%%.
func renderProfile(events []obs.Event) string {
	edges := map[[2]string]*profEdge{}
	var spans int64
	for i := range events {
		ev := &events[i]
		if ev.Kind != obs.KindSpan {
			continue
		}
		spans++
		k := [2]string{ev.Parent, ev.Layer}
		e := edges[k]
		if e == nil {
			e = &profEdge{parent: ev.Parent, layer: ev.Layer}
			edges[k] = e
		}
		e.count++
		e.virtTotal += ev.VirtCost
		e.virtSelf += ev.SelfVirt
		e.wallTotal += ev.WallCost
		e.wallSelf += ev.SelfWall
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== Time attribution profile (%d spans) ==\n", spans)
	if spans == 0 {
		b.WriteString("  no span events in trace (run with -spans)\n\n")
		return b.String()
	}
	children := map[string][]*profEdge{}
	for _, e := range edges {
		children[e.parent] = append(children[e.parent], e)
	}
	for _, cs := range children {
		sort.Slice(cs, func(i, j int) bool {
			if cs[i].virtTotal != cs[j].virtTotal {
				return cs[i].virtTotal > cs[j].virtTotal
			}
			return cs[i].layer < cs[j].layer
		})
	}
	roots := children[""]
	var base int64
	for _, e := range roots {
		base += e.virtTotal
	}
	pct := func(v int64) float64 {
		if base == 0 {
			return 0
		}
		return 100 * float64(v) / float64(base)
	}
	fmt.Fprintf(&b, "  %-34s %8s %12s %12s %7s %7s %12s %12s\n",
		"layer", "count", "virt-total", "virt-self", "total%", "self%", "wall-total", "wall-self")
	var walk func(e *profEdge, depth int, path map[string]bool)
	walk = func(e *profEdge, depth int, path map[string]bool) {
		fmt.Fprintf(&b, "  %-34s %8d %12d %12d %6.1f%% %6.1f%% %12s %12s\n",
			strings.Repeat("  ", depth)+e.layer, e.count, e.virtTotal, e.virtSelf,
			pct(e.virtTotal), pct(e.virtSelf),
			time.Duration(e.wallTotal), time.Duration(e.wallSelf))
		if path[e.layer] {
			return // self-recursive layer: children already attributed above
		}
		path[e.layer] = true
		for _, c := range children[e.layer] {
			walk(c, depth+1, path)
		}
		delete(path, e.layer)
	}
	for _, e := range roots {
		walk(e, 0, map[string]bool{})
	}
	b.WriteString("\n")
	return b.String()
}

// sessionAgg aggregates one session's events.
type sessionAgg struct {
	name    string
	order   int
	seed    int64
	strat   string
	forks   int64
	runs    int64
	queries int64
	tests   int
	hlPaths int
	llPaths int64
	endT    int64
}

// renderSessions prints one summary line per traced session.
func renderSessions(events []obs.Event) string {
	aggs := map[string]*sessionAgg{}
	get := func(name string) *sessionAgg {
		a := aggs[name]
		if a == nil {
			a = &sessionAgg{name: name, order: len(aggs)}
			aggs[name] = a
		}
		return a
	}
	for i := range events {
		ev := &events[i]
		a := get(ev.Session)
		switch ev.Kind {
		case obs.KindSessionStart:
			a.seed, a.strat = ev.Seed, ev.Strategy
		case obs.KindSessionEnd:
			a.tests, a.hlPaths, a.llPaths, a.endT = ev.Tests, ev.HLPaths, ev.LLPaths, ev.T
		case obs.KindLLFork:
			a.forks++
		case obs.KindRunEnd:
			a.runs++
		case obs.KindSolverQuery:
			a.queries++
		}
	}
	ordered := make([]*sessionAgg, 0, len(aggs))
	for _, a := range aggs {
		ordered = append(ordered, a)
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].order < ordered[j].order })
	var b strings.Builder
	fmt.Fprintf(&b, "== Sessions (%d) ==\n", len(ordered))
	fmt.Fprintf(&b, "  %-36s %-16s %6s %6s %8s %6s %8s %8s %12s\n",
		"session", "strategy", "tests", "hl", "ll", "runs", "forks", "queries", "end-virt")
	for _, a := range ordered {
		name := a.name
		if name == "" {
			name = "(unnamed)"
		}
		fmt.Fprintf(&b, "  %-36s %-16s %6d %6d %8d %6d %8d %8d %12d\n",
			name, a.strat, a.tests, a.hlPaths, a.llPaths, a.runs, a.forks, a.queries, a.endT)
	}
	return b.String()
}
