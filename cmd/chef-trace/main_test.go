package main

import (
	"bytes"
	"strings"
	"testing"

	"chef/internal/chef"
	"chef/internal/minipy"
	"chef/internal/obs"
	"chef/internal/packages"
)

// syntheticTrace is a small handcrafted event stream covering every report
// section.
func syntheticTrace() []obs.Event {
	return []obs.Event{
		{T: 0, Kind: obs.KindSessionStart, Session: "s1", Seed: 7, Strategy: "cupa-path"},
		{T: 10, Kind: obs.KindLLFork, Session: "s1", LLPC: 0x40, Decision: "flip-taken"},
		{T: 12, Kind: obs.KindLLFork, Session: "s1", LLPC: 0x40, Decision: "flip-untaken"},
		{T: 14, Kind: obs.KindLLFork, Session: "s1", LLPC: 0x99, Decision: "flip-taken"},
		{T: 20, Kind: obs.KindSolverQuery, Session: "s1", Result: "sat", VirtCost: 5, WallCost: 1200, CacheHit: false},
		{T: 25, Kind: obs.KindSolverQuery, Session: "s1", Result: "unsat", VirtCost: 2, WallCost: 400, CacheHit: true},
		{T: 40, Kind: obs.KindTestCase, Session: "s1", HLLen: 3, Sig: "00000000000000aa", Status: "ok"},
		{T: 30, Kind: obs.KindTestCase, Session: "s1", HLLen: 2, Sig: "00000000000000bb", Status: "ok"},
		{T: 50, Kind: obs.KindRunEnd, Session: "s1", Status: "completed"},
		{T: 60, Kind: obs.KindSessionEnd, Session: "s1", Tests: 2, HLPaths: 2, LLPaths: 4},
	}
}

func TestRenderSynthetic(t *testing.T) {
	out, err := Render(syntheticTrace(), "all", 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"Fork hot spots", "HL path discovery timeline", "Solver latency", "Sessions",
		"0x40", "0x99",
		"flip-taken=1 flip-untaken=1", // decisions at 0x40
		"cache:   1/2 hits (50.0%)",
		"sat=1 unsat=1",
		"cupa-path",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q\n%s", want, out)
		}
	}
	// Hot-spot ranking: 0x40 (2 forks) before 0x99 (1 fork).
	if strings.Index(out, "0x40") > strings.Index(out, "0x99") {
		t.Error("fork hot spots not sorted by count")
	}
	// Timeline sorted by virtual time: the T=30 test precedes the T=40 one.
	if strings.Index(out, "00000000000000bb") > strings.Index(out, "00000000000000aa") {
		t.Error("timeline not sorted by virtual time")
	}
}

func TestRenderSections(t *testing.T) {
	events := syntheticTrace()
	if _, err := Render(events, "nonsense", 5); err == nil {
		t.Error("unknown section accepted")
	}
	solo, err := Render(events, "solver", 5)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(solo, "Solver latency") || strings.Contains(solo, "Fork hot spots") {
		t.Errorf("-section solver rendered wrong sections:\n%s", solo)
	}
	if _, err := Render(nil, "all", 5); err != nil {
		t.Errorf("empty trace should render: %v", err)
	}
}

// TestEndToEndTrace runs a real (small) exploration with the JSONL tracer and
// checks the parsed trace renders and is consistent with the session summary.
func TestEndToEndTrace(t *testing.T) {
	p, ok := packages.ByName("simplejson")
	if !ok {
		t.Fatal("simplejson package missing")
	}
	var buf bytes.Buffer
	tr := obs.NewJSONL(&buf)
	tr.DisableWallClock()
	s := chef.NewSession(p.PyTest(minipy.Optimized).Program(), chef.Options{
		Strategy: chef.StrategyCUPAPath, Seed: 1, StepLimit: 30_000,
		Tracer: tr, Name: "simplejson/e2e/1",
	})
	tests := s.Run(300_000)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	events, err := obs.ParseJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("traced run produced no events")
	}
	var cases int
	for _, ev := range events {
		if ev.Kind == obs.KindTestCase {
			cases++
		}
	}
	if cases != len(tests) {
		t.Errorf("testcase events = %d, session produced %d tests", cases, len(tests))
	}
	out, err := Render(events, "all", 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Fork hot spots", "HL path discovery timeline", "Solver latency", "simplejson/e2e/1"} {
		if !strings.Contains(out, want) {
			t.Errorf("end-to-end report missing %q", want)
		}
	}
}
