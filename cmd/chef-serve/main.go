// Command chef-serve runs symbolic execution as a long-running service:
// exploration jobs arrive over HTTP/JSON, run on a bounded worker pool
// backed by one shared warm persistent store and the process-wide program
// interner, and report results through the job API. See docs/SERVING.md.
//
// Usage:
//
//	chef-serve -addr :8080 -workers 4 -cachefile /var/lib/chef/queries.ndjson
//
// Endpoints: POST /v1/jobs, GET /v1/jobs/{id}, GET /v1/jobs/{id}/events,
// GET /v1/jobs/{id}/tests, DELETE /v1/jobs/{id}, GET /healthz, GET /metrics.
//
// On SIGTERM/SIGINT the server drains: new submissions are rejected with
// 503, queued and running jobs finish (up to -drain-timeout, then they are
// cancelled), the persistent store is flushed and the process exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"chef/internal/faults"
	"chef/internal/obs"
	"chef/internal/obscli"
	"chef/internal/serve"
	"chef/internal/solver"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		workers      = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		queueCap     = flag.Int("queue", 64, "bounded job queue capacity (full queue answers 429)")
		tenantLimit  = flag.Int("tenant-limit", 0, "max concurrently running jobs per X-API-Key tenant (0 = unlimited)")
		retryAfter   = flag.Int("retry-after", 1, "Retry-After seconds hint on 429 responses")
		cfile        = flag.String("cachefile", "", "persistent counterexample store shared by all jobs")
		sharedCache  = flag.Bool("sharedcache", false, "share one in-memory query cache across jobs (throughput knob; per-job stats become schedule-dependent)")
		drainTimeout = flag.Duration("drain-timeout", 2*time.Minute, "max time to let jobs finish on SIGTERM before cancelling them")
		fspec        = flag.String("faults", "", "deterministic fault-injection plan, e.g. 'seed=7;worker.stall:session=1;persist.write:err@n=3'")
		pprofOn      = flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/ on the service address")
	)
	var obsFlags obscli.Flags
	obsFlags.Register(flag.CommandLine)
	flag.Parse()

	plan, err := faults.Parse(*fspec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "chef-serve: -faults: %v\n", err)
		return 1
	}
	var persist *solver.PersistentStore
	if *cfile != "" {
		persist, err = solver.OpenPersistentStore(*cfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "chef-serve: -cachefile: %v\n", err)
			return 1
		}
		if cerr := persist.Corruption(); cerr != nil {
			fmt.Fprintf(os.Stderr, "chef-serve: -cachefile: %v; continuing with the %d valid entries (appends disabled)\n",
				cerr, persist.Loaded())
		}
	}
	// Servers always carry a registry: /metrics must work without any
	// metrics flag.
	if err := obsFlags.StartAlways("chef-serve"); err != nil {
		fmt.Fprintf(os.Stderr, "chef-serve: %v\n", err)
		return 1
	}
	if persist != nil && plan != nil {
		inj := plan.Injector("persist")
		inj.Instrument(obsFlags.Registry())
		persist.SetFaults(inj)
	}
	if persist != nil {
		// Dedicated profiler for the flusher goroutine: persist.flush spans
		// land in the server-total registry and the server-level trace.
		persist.Attach(solver.Instruments{Spans: obs.NewSpanProfiler(obsFlags.Registry(), obsFlags.Tracer())})
	}

	srv := serve.NewServer(serve.Options{
		Workers:           *workers,
		QueueCap:          *queueCap,
		TenantLimit:       *tenantLimit,
		RetryAfterSeconds: *retryAfter,
		Persist:           persist,
		SharedCache:       *sharedCache,
		Faults:            plan,
		Metrics:           obsFlags.Registry(),
		Tracer:            obsFlags.Tracer(),
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "chef-serve: %v\n", err)
		return 1
	}
	fmt.Printf("chef-serve: listening on %s\n", ln.Addr())

	handler := srv.Handler()
	if *pprofOn {
		// obscli's side-effect import registers the pprof handlers on the
		// default mux; expose them alongside the job API when asked.
		m := http.NewServeMux()
		m.Handle("/debug/pprof/", http.DefaultServeMux)
		m.Handle("/", handler)
		handler = m
	}
	httpSrv := &http.Server{Handler: handler}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, os.Interrupt)
	defer stop()
	select {
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "chef-serve: %v\n", err)
		return 1
	case <-ctx.Done():
	}
	stop()
	fmt.Println("chef-serve: draining")

	// Drain first (reject new work, finish in-flight jobs), then shut the
	// listener down: /healthz and job polls stay answerable while jobs run.
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	if err := srv.Drain(dctx); err != nil {
		fmt.Fprintf(os.Stderr, "chef-serve: drain: %v (remaining jobs cancelled)\n", err)
	}
	cancel()
	sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
	_ = httpSrv.Shutdown(sctx)
	scancel()

	code := 0
	if err := srv.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "chef-serve: -cachefile: %v\n", err)
		code = 1
	}
	if err := obsFlags.Finish(os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "chef-serve: %v\n", err)
		code = 1
	}
	fmt.Println("chef-serve: stopped")
	return code
}
