// Package chefbench is the benchmark harness required by DESIGN.md: one
// benchmark per table and figure of the paper's evaluation (§6), plus
// ablation benches for the design choices the reproduction makes
// configurable. Run with:
//
//	go test -bench=. -benchmem
//
// Each benchmark prints the regenerated table/figure once (on the first
// iteration) and reports domain-specific metrics (tests generated, coverage,
// overhead) through testing.B metrics, so the *shape* of the paper's results
// is visible directly in the bench output.
package chefbench

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"chef/internal/chef"
	"chef/internal/cupa"
	"chef/internal/dedicated"
	"chef/internal/experiments"
	"chef/internal/lowlevel"
	"chef/internal/minipy"
	"chef/internal/obs"
	"chef/internal/packages"
	"chef/internal/solver"
	"chef/internal/symexpr"
)

// benchBudgets returns budgets small enough for iterated benchmarking while
// still exhibiting every effect.
func benchBudgets() experiments.Budgets {
	return experiments.Budgets{Time: 400_000, StepLimit: 30_000, Reps: 1, Seed: 1}
}

// --- Table benches ---------------------------------------------------------

// BenchmarkTable2Effort regenerates Table 2 (interpreter-preparation
// effort). The table is static; the bench measures its assembly.
func BenchmarkTable2Effort(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out = experiments.RenderTable2(experiments.Table2())
	}
	if testing.Verbose() {
		fmt.Println(out)
	}
}

// BenchmarkTable3Testing regenerates Table 3: run the full engine on every
// package and classify exceptions and hangs.
func BenchmarkTable3Testing(b *testing.B) {
	bud := benchBudgets()
	var rows []experiments.Table3Row
	for i := 0; i < b.N; i++ {
		rows = experiments.Table3(bud)
	}
	var excTotal, excUndoc, hangs int
	for _, r := range rows {
		excTotal += r.ExcTotal
		excUndoc += r.ExcUndoc
		if r.Hangs {
			hangs++
		}
	}
	b.ReportMetric(float64(excTotal), "exceptions")
	b.ReportMetric(float64(excUndoc), "undocumented")
	b.ReportMetric(float64(hangs), "hanging-pkgs")
	if testing.Verbose() {
		fmt.Println(experiments.RenderTable3(rows))
	}
}

// BenchmarkTable4Features regenerates the feature matrix.
func BenchmarkTable4Features(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out = experiments.RenderTable4(experiments.Table4())
	}
	if testing.Verbose() {
		fmt.Println(out)
	}
}

// --- Figure benches --------------------------------------------------------

// BenchmarkFig8TestGeneration regenerates Figure 8: high-level test cases
// per configuration, relative to the baseline. The reported metric is the
// geometric-mean speedup of the aggregate configuration over the baseline.
func BenchmarkFig8TestGeneration(b *testing.B) {
	bud := benchBudgets()
	var rows []experiments.Fig8Row
	for i := 0; i < b.N; i++ {
		rows = experiments.Fig8(bud)
	}
	prod, n := 1.0, 0
	for _, r := range rows {
		if r.Ratio[3] > 0 {
			prod *= r.Ratio[3]
			n++
		}
	}
	if n > 0 {
		b.ReportMetric(geomean(prod, n), "aggregate-vs-baseline-x")
	}
	if testing.Verbose() {
		fmt.Println(experiments.RenderFig8(rows))
	}
}

func geomean(prod float64, n int) float64 {
	if n == 0 || prod <= 0 {
		return 0
	}
	return math.Pow(prod, 1/float64(n))
}

// BenchmarkFig9Coverage regenerates Figure 9: line coverage per
// configuration with coverage-optimized CUPA.
func BenchmarkFig9Coverage(b *testing.B) {
	bud := benchBudgets()
	var rows []experiments.Fig9Row
	for i := 0; i < b.N; i++ {
		rows = experiments.Fig9(bud)
	}
	var base, aggr float64
	for _, r := range rows {
		base += r.Coverage[0].Mean
		aggr += r.Coverage[3].Mean
	}
	b.ReportMetric(100*base/float64(len(rows)), "baseline-cov-%")
	b.ReportMetric(100*aggr/float64(len(rows)), "aggregate-cov-%")
	if testing.Verbose() {
		fmt.Println(experiments.RenderFig9(rows))
	}
}

// BenchmarkFig10PathRatio regenerates Figure 10: the fraction of low-level
// paths that yield new high-level paths over time.
func BenchmarkFig10PathRatio(b *testing.B) {
	bud := benchBudgets()
	var series []experiments.Fig10Series
	for i := 0; i < b.N; i++ {
		series = experiments.Fig10(bud)
	}
	for _, s := range series {
		if s.Config == "CUPA + Optimizations" && s.Lang == "Python" {
			b.ReportMetric(100*s.Points[9], "py-aggregate-final-%")
		}
		if s.Config == "Baseline" && s.Lang == "Python" {
			b.ReportMetric(100*s.Points[9], "py-baseline-final-%")
		}
	}
	if testing.Verbose() {
		fmt.Println(experiments.RenderFig10(series))
	}
}

// BenchmarkFig11OptBreakdown regenerates Figure 11: the per-package
// contribution of each cumulative interpreter-optimization level.
func BenchmarkFig11OptBreakdown(b *testing.B) {
	bud := benchBudgets()
	var rows []experiments.Fig11Row
	for i := 0; i < b.N; i++ {
		rows = experiments.Fig11(bud)
	}
	var noOpt, full float64
	for _, r := range rows {
		noOpt += r.Tests[0].Mean
		full += r.Tests[3].Mean
	}
	b.ReportMetric(noOpt, "tests-noopt")
	b.ReportMetric(full, "tests-fullopt")
	if testing.Verbose() {
		fmt.Println(experiments.RenderFig11(rows))
	}
}

// BenchmarkFig12Overhead regenerates Figure 12: CHEF's per-path overhead
// over the dedicated engine on the MAC-learning controller.
func BenchmarkFig12Overhead(b *testing.B) {
	bud := benchBudgets()
	var pts []experiments.Fig12Point
	for i := 0; i < b.N; i++ {
		pts = experiments.Fig12(3, bud)
	}
	for _, p := range pts {
		if p.Frames == 3 {
			switch p.Level {
			case "No Optimizations":
				b.ReportMetric(p.Overhead, "overhead-vanilla-x")
			case "+ Fast Path Elimination":
				b.ReportMetric(p.Overhead, "overhead-fullopt-x")
			}
		}
	}
	if testing.Verbose() {
		fmt.Println(experiments.RenderFig12(pts))
	}
}

// --- Parallel harness benches ------------------------------------------------

// parallelGridBudgets is the workload for the worker-pool benches: a slice of
// the §6.3 grid big enough that parallel scheduling matters.
func parallelGridBudgets(workers int) experiments.Budgets {
	b := benchBudgets()
	b.Reps = 2
	b.Parallel = workers
	return b
}

// runParallelGridSlice runs a 4-package x 4-configuration x 2-repetition
// slice of the evaluation grid and returns the total test count (to keep the
// compiler honest and to assert serial/parallel agreement).
func runParallelGridSlice(b experiments.Budgets) int {
	configs := experiments.FourConfigurations(true)
	total := 0
	for _, name := range []string{"simplejson", "HTMLParser", "JSON", "cliargs"} {
		p, _ := packages.ByName(name)
		for _, cfg := range configs {
			t, _, _ := experiments.RunRepeated(p, cfg, b)
			total += int(t.Mean * float64(b.Reps))
		}
	}
	return total
}

// BenchmarkParallelGrid measures the experiment grid under the worker pool.
// Sub-benchmarks run the same workload serial (-parallel 1) and at 4 workers;
// the parallel run also reports its wall-clock speedup over a serial
// reference measured in the same process. On a >= 4-core machine the speedup
// at 4 workers is >= 2x; on fewer cores it degrades gracefully toward 1x
// (the pool adds no measurable overhead).
func BenchmarkParallelGrid(b *testing.B) {
	b.Run("serial", func(b *testing.B) {
		bud := parallelGridBudgets(1)
		for i := 0; i < b.N; i++ {
			runParallelGridSlice(bud)
		}
	})
	b.Run("parallel-4", func(b *testing.B) {
		serialBud := parallelGridBudgets(1)
		parBud := parallelGridBudgets(4)
		var serialNs, parNs int64
		var serialTests, parTests int
		for i := 0; i < b.N; i++ {
			t0 := time.Now()
			serialTests = runParallelGridSlice(serialBud)
			serialNs += time.Since(t0).Nanoseconds()
			t1 := time.Now()
			parTests = runParallelGridSlice(parBud)
			parNs += time.Since(t1).Nanoseconds()
		}
		if serialTests != parTests {
			b.Fatalf("parallel grid diverged: serial %d tests, parallel %d", serialTests, parTests)
		}
		if parNs > 0 {
			b.ReportMetric(float64(serialNs)/float64(parNs), "speedup-x")
		}
		b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "gomaxprocs")
	})
}

// BenchmarkSharedSolverCache measures cross-session counterexample-cache
// reuse: the same grid slice with private per-session caches versus one
// shared sharded cache, reporting the shared cache's hit rate.
func BenchmarkSharedSolverCache(b *testing.B) {
	b.Run("private", func(b *testing.B) {
		bud := parallelGridBudgets(0)
		for i := 0; i < b.N; i++ {
			runParallelGridSlice(bud)
		}
	})
	b.Run("shared", func(b *testing.B) {
		bud := parallelGridBudgets(0)
		var hitRate float64
		for i := 0; i < b.N; i++ {
			bud.Cache = solver.NewQueryCache(0)
			runParallelGridSlice(bud)
			cs := bud.Cache.Stats()
			if cs.Queries > 0 {
				hitRate = float64(cs.Hits) / float64(cs.Queries)
			}
		}
		b.ReportMetric(100*hitRate, "shared-hit-%")
	})
}

// --- Ablation benches (DESIGN.md) -------------------------------------------

// BenchmarkAblationCUPALevels compares the 2-level path-optimized CUPA
// (dynamic HLPC x LLPC, the paper's §3.3) with a 1-level variant that
// classifies by dynamic HLPC only, on the vanilla interpreter where
// low-level hot spots are most pronounced.
func BenchmarkAblationCUPALevels(b *testing.B) {
	p, _ := packages.ByName("simplejson")
	bud := benchBudgets()
	oneLevel := func(rng *rand.Rand, _ *chef.CFG) lowlevel.Strategy {
		return cupa.New(rng, []cupa.Level{
			{Key: func(s *lowlevel.State) uint64 { return s.DynHLPC }},
		}, nil)
	}
	run := func(factory func(*rand.Rand, *chef.CFG) lowlevel.Strategy, kind chef.StrategyKind) int {
		pt := p.PyTest(minipy.Vanilla)
		s := chef.NewSession(pt.Program(), chef.Options{
			Strategy:        kind,
			StrategyFactory: factory,
			Seed:            1,
			StepLimit:       bud.StepLimit,
		})
		return len(s.Run(bud.Time))
	}
	var two, one int
	for i := 0; i < b.N; i++ {
		two = run(nil, chef.StrategyCUPAPath)
		one = run(oneLevel, chef.StrategyRandom)
	}
	b.ReportMetric(float64(two), "tests-2level")
	b.ReportMetric(float64(one), "tests-1level")
}

// BenchmarkAblationForkWeight sweeps the fork-weight decay p of §3.4.
func BenchmarkAblationForkWeight(b *testing.B) {
	p, _ := packages.ByName("HTMLParser")
	bud := benchBudgets()
	for _, decay := range []float64{0.5, 0.75, 0.9, 1.0} {
		decay := decay
		b.Run(fmt.Sprintf("p=%.2f", decay), func(b *testing.B) {
			var tests int
			for i := 0; i < b.N; i++ {
				pt := p.PyTest(minipy.Optimized)
				s := chef.NewSession(pt.Program(), chef.Options{
					Strategy:        chef.StrategyCUPACoverage,
					Seed:            1,
					StepLimit:       bud.StepLimit,
					ForkWeightDecay: decay,
				})
				tests = len(s.Run(bud.Time))
			}
			b.ReportMetric(float64(tests), "tests")
		})
	}
}

// BenchmarkAblationSolver toggles the solver's independent-constraint
// slicing and counterexample cache on the raw constraint workload generated
// by exploring simplejson.
func BenchmarkAblationSolver(b *testing.B) {
	p, _ := packages.ByName("simplejson")
	bud := benchBudgets()
	cases := []struct {
		name string
		opts solver.Options
	}{
		{"full", solver.Options{}},
		{"no-slicing", solver.Options{DisableSlicing: true}},
		{"no-cache", solver.Options{DisableCache: true}},
		{"neither", solver.Options{DisableSlicing: true, DisableCache: true}},
	}
	for _, c := range cases {
		c := c
		b.Run(c.name, func(b *testing.B) {
			var tests int
			var props int64
			for i := 0; i < b.N; i++ {
				pt := p.PyTest(minipy.Optimized)
				s := chef.NewSession(pt.Program(), chef.Options{
					Strategy:      chef.StrategyCUPAPath,
					Seed:          1,
					StepLimit:     bud.StepLimit,
					SolverOptions: c.opts,
				})
				tests = len(s.Run(bud.Time))
				props = s.Engine().Solver().Stats().Propagations
			}
			b.ReportMetric(float64(tests), "tests")
			b.ReportMetric(float64(props), "sat-props")
		})
	}
}

// BenchmarkAblationStrategies compares the full strategy zoo on HTMLParser.
func BenchmarkAblationStrategies(b *testing.B) {
	p, _ := packages.ByName("HTMLParser")
	bud := benchBudgets()
	for _, k := range []chef.StrategyKind{chef.StrategyRandom, chef.StrategyDFS, chef.StrategyBFS, chef.StrategyCUPAPath, chef.StrategyCUPACoverage} {
		k := k
		b.Run(k.String(), func(b *testing.B) {
			var tests int
			for i := 0; i < b.N; i++ {
				pt := p.PyTest(minipy.Optimized)
				s := chef.NewSession(pt.Program(), chef.Options{Strategy: k, Seed: 1, StepLimit: bud.StepLimit})
				tests = len(s.Run(bud.Time))
			}
			b.ReportMetric(float64(tests), "tests")
		})
	}
}

// --- Component micro-benches -------------------------------------------------

// BenchmarkSolverByteEquations measures the solver on string-comparison
// shaped queries.
func BenchmarkSolverByteEquations(b *testing.B) {
	s := solver.New(solver.Options{DisableCache: true})
	for i := 0; i < b.N; i++ {
		var cs []*symexpr.Expr
		for j := 0; j < 8; j++ {
			v := symexpr.NewVar(symexpr.Var{Buf: "s", Idx: j, W: symexpr.W8})
			cs = append(cs, symexpr.Eq(v, symexpr.Const(uint64('a'+j%26), symexpr.W8)))
		}
		if res, _ := s.Check(cs, nil); res != solver.Sat {
			b.Fatal("unexpected unsat")
		}
	}
}

// BenchmarkSolverHashInversion measures the solver inverting the string
// hash, the workload hash-neutralization avoids.
func BenchmarkSolverHashInversion(b *testing.B) {
	s := solver.New(solver.Options{DisableCache: true})
	for i := 0; i < b.N; i++ {
		h := symexpr.Const(2, symexpr.W64)
		for j := 0; j < 2; j++ {
			v := symexpr.ZExt(symexpr.NewVar(symexpr.Var{Buf: "k", Idx: j, W: symexpr.W8}), symexpr.W64)
			h = symexpr.Xor(symexpr.Mul(h, symexpr.Const(1000003, symexpr.W64)), v)
		}
		target := symexpr.And(h, symexpr.Const(7, symexpr.W64))
		cs := []*symexpr.Expr{symexpr.Eq(target, symexpr.Const(uint64(i%8), symexpr.W64))}
		s.Check(cs, nil)
	}
}

// BenchmarkMiniPyInterp measures raw concrete interpretation speed.
func BenchmarkMiniPyInterp(b *testing.B) {
	prog := minipy.MustCompile(`
total = 0
for i in range(200):
    total += i * 3 % 7
`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := lowlevel.NewConcreteMachine(nil, 1<<22)
		m.RunConcrete(func(m *lowlevel.Machine) { minipy.RunModule(prog, m, nil, minipy.Optimized) })
	}
}

// BenchmarkCUPASelection measures strategy insert/select throughput.
func BenchmarkCUPASelection(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	s := cupa.NewPathOptimized(rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Add(&lowlevel.State{DynHLPC: uint64(i % 64), LLPC: lowlevel.LLPC(i % 8), ForkWeight: 1})
		if i%2 == 1 {
			s.Select()
		}
	}
}

// BenchmarkDedicatedEngine measures the dedicated engine on the MAC
// workload.
func BenchmarkDedicatedEngine(b *testing.B) {
	src := packages.MacLearningFlatSource(2)
	prog := minipy.MustCompile(src)
	for i := 0; i < b.N; i++ {
		e := dedicated.New(prog, dedicated.Options{})
		var args []dedicated.Value
		for j := 0; j < 2; j++ {
			args = append(args, dstr(fmt.Sprintf("s%d", j)), dstr(fmt.Sprintf("d%d", j)))
		}
		if err := e.Explore("drive_frames", args); err != nil {
			b.Fatal(err)
		}
	}
}

func dstr(name string) dedicated.Value {
	bts := make([]*symexpr.Expr, 2)
	for i := range bts {
		bts[i] = symexpr.NewVar(symexpr.Var{Buf: name, Idx: i, W: symexpr.W8})
	}
	return dedicated.StrV{B: bts}
}

// BenchmarkAblationPortfolio compares a portfolio over the four interpreter
// builds (the §6.5 extension) against the single fully-optimized build on
// xlrd, at equal total budget.
func BenchmarkAblationPortfolio(b *testing.B) {
	p, _ := packages.ByName("xlrd")
	bud := benchBudgets()
	total := bud.Time * 4
	var single, portfolio int
	for i := 0; i < b.N; i++ {
		s := chef.NewSession(p.PyTest(minipy.Optimized).Program(),
			chef.Options{Strategy: chef.StrategyCUPAPath, Seed: 5, StepLimit: bud.StepLimit})
		single = len(s.Run(total))

		var members []chef.PortfolioMember
		names := minipy.OptLevelNames()
		for li, lvl := range minipy.OptLevels() {
			members = append(members, chef.PortfolioMember{Name: names[li], Prog: p.PyTest(lvl).Program()})
		}
		res := chef.RunPortfolio(members,
			chef.Options{Strategy: chef.StrategyCUPAPath, Seed: 5, StepLimit: bud.StepLimit}, total)
		portfolio = len(res.Tests)
	}
	b.ReportMetric(float64(single), "tests-single-build")
	b.ReportMetric(float64(portfolio), "tests-portfolio")
}

// --- Observability overhead ------------------------------------------------

// benchExplore runs one fixed exploration session with the given sinks; the
// workload is identical across the observability sub-benches so their ns/op
// are directly comparable.
func benchExplore(b *testing.B, reg *obs.Registry, tr obs.Tracer) {
	p, _ := packages.ByName("simplejson")
	prog := p.PyTest(minipy.Optimized).Program()
	bud := benchBudgets()
	b.ResetTimer()
	var tests int
	for i := 0; i < b.N; i++ {
		s := chef.NewSession(prog, chef.Options{
			Strategy: chef.StrategyCUPAPath, Seed: 1, StepLimit: bud.StepLimit,
			Metrics: reg, Tracer: tr,
		})
		tests = len(s.Run(bud.Time))
	}
	b.ReportMetric(float64(tests), "tests")
}

// BenchmarkTracingOverhead quantifies the cost of the observability layer on
// a fixed exploration workload: disabled (the nil-check hot path, the cost
// every production run pays), metrics-only (atomic counters + histograms),
// and full JSONL tracing to a discarded writer. The disabled case is the one
// the <5% overhead budget of the design applies to.
func BenchmarkTracingOverhead(b *testing.B) {
	b.Run("disabled", func(b *testing.B) {
		benchExplore(b, nil, nil)
	})
	b.Run("metrics", func(b *testing.B) {
		benchExplore(b, obs.NewRegistry(), nil)
	})
	b.Run("trace-jsonl", func(b *testing.B) {
		tr := obs.NewJSONL(io.Discard)
		tr.DisableWallClock()
		benchExplore(b, nil, tr)
	})
	b.Run("metrics+trace", func(b *testing.B) {
		tr := obs.NewJSONL(io.Discard)
		tr.DisableWallClock()
		benchExplore(b, obs.NewRegistry(), tr)
	})
}

// benchExploreSpans is benchExplore with a span profiler attached (a fresh
// one per session; profilers are single-goroutine and hold a span stack).
func benchExploreSpans(b *testing.B, mkReg func() *obs.Registry, mkTracer func() obs.Tracer) {
	p, _ := packages.ByName("simplejson")
	prog := p.PyTest(minipy.Optimized).Program()
	bud := benchBudgets()
	b.ResetTimer()
	var tests int
	for i := 0; i < b.N; i++ {
		s := chef.NewSession(prog, chef.Options{
			Strategy: chef.StrategyCUPAPath, Seed: 1, StepLimit: bud.StepLimit,
			Spans: obs.NewSpanProfiler(mkReg(), mkTracer()),
		})
		tests = len(s.Run(bud.Time))
	}
	b.ReportMetric(float64(tests), "tests")
}

// BenchmarkSpanOverhead quantifies the span profiler against the same fixed
// workload as BenchmarkTracingOverhead. The disabled case is the nil-check
// path every unprofiled run pays (it must stay within noise of
// TracingOverhead/disabled); spans+metrics is the production -spans
// configuration (a handful of atomic adds per span close); spans+trace adds
// one JSONL event per span.
func BenchmarkSpanOverhead(b *testing.B) {
	b.Run("disabled", func(b *testing.B) {
		benchExplore(b, nil, nil)
	})
	b.Run("spans+metrics", func(b *testing.B) {
		benchExploreSpans(b, obs.NewRegistry, func() obs.Tracer { return nil })
	})
	b.Run("spans+trace", func(b *testing.B) {
		benchExploreSpans(b, func() *obs.Registry { return nil }, func() obs.Tracer {
			tr := obs.NewJSONL(io.Discard)
			tr.DisableWallClock()
			return tr
		})
	})
}

// benchQueries builds a deterministic batch of growing path conditions over
// one symbolic byte — the natural query pattern of symbolic execution, where
// each branch appends one conjunct to the previous path condition.
func benchQueries() [][]*symexpr.Expr {
	a := symexpr.NewVar(symexpr.Var{Buf: "a", W: symexpr.W8})
	grow := []*symexpr.Expr{
		symexpr.Ult(a, symexpr.Const(200, symexpr.W8)),
		symexpr.Ult(symexpr.Const(10, symexpr.W8), a),
		symexpr.Ne(a, symexpr.Const(50, symexpr.W8)),
		symexpr.Ne(a, symexpr.Const(77, symexpr.W8)),
		symexpr.Ule(a, symexpr.Const(180, symexpr.W8)),
	}
	var out [][]*symexpr.Expr
	for i := 1; i <= len(grow); i++ {
		out = append(out, grow[:i])
	}
	return out
}

// BenchmarkCheckCached measures one solver query in every cache regime:
// nocache re-solves each time (the price of a miss), exact and subsume serve
// repeats from their respective cache layers (the price of a hit). The
// hit/miss ratio here is what the counterexample cache buys the engine on
// every branch of an exploration.
func BenchmarkCheckCached(b *testing.B) {
	queries := benchQueries()
	run := func(b *testing.B, opts solver.Options) {
		s := solver.New(opts)
		for _, q := range queries { // warm every layer
			s.Check(q, nil)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if res, _ := s.Check(queries[i%len(queries)], nil); res != solver.Sat {
				b.Fatalf("unexpected verdict %v", res)
			}
		}
	}
	b.Run("nocache", func(b *testing.B) { run(b, solver.Options{DisableCache: true}) })
	b.Run("exact", func(b *testing.B) { run(b, solver.Options{Mode: solver.CacheExact}) })
	b.Run("subsume", func(b *testing.B) { run(b, solver.Options{Mode: solver.CacheSubsume}) })
}

// BenchmarkInterning measures hash-consed construction of a fixed expression
// tree. After the first build every constructor call is an interner hit, so
// this is the steady-state cost the engine pays per emitted expression node —
// and the pointer-equality dividend is visible in the "equal" sub-bench,
// which compares two structurally equal trees in O(1).
func BenchmarkInterning(b *testing.B) {
	build := func(salt uint64) *symexpr.Expr {
		a := symexpr.NewVar(symexpr.Var{Buf: "a", W: symexpr.W8})
		x := symexpr.Add(a, symexpr.Const(salt&0xff, symexpr.W8))
		for i := 0; i < 10; i++ {
			x = symexpr.Xor(symexpr.Mul(x, symexpr.Const(uint64(i)|1, symexpr.W8)), a)
		}
		return symexpr.Ult(x, symexpr.Const(200, symexpr.W8))
	}
	b.Run("construct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if build(7) == nil {
				b.Fatal("nil expr")
			}
		}
	})
	b.Run("equal", func(b *testing.B) {
		x, y := build(7), build(7)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if !symexpr.Equal(x, y) {
				b.Fatal("interned trees unequal")
			}
		}
	})
}
